//! The Theorem 3.3 counterexample tower.
//!
//! When the Proposition 3.5 test fails (`x̄ ∉ Q(V_∅^{-1}(S))`), the proof
//! of Theorem 3.3 constructs two chains of instances
//!
//! ```text
//! D₀ = [Q]            S₀ = V(D₀)      S'₀ = ∅      D'₀ = V_∅^{-1}(S₀)
//! S'ₖ₊₁ = V(D'ₖ)      Dₖ₊₁ = V_{Dₖ}^{-1}(S'ₖ₊₁)
//! Sₖ₊₁ = V(Dₖ₊₁)      D'ₖ₊₁ = V_{D'ₖ}^{-1}(S'ₖ₊₁)
//! ```
//!
//! whose unions `D_∞, D'_∞` satisfy `V(D_∞) = V(D'_∞)` but
//! `Q(D_∞) ≠ Q(D'_∞)` — the (possibly infinite) witness that **V** does
//! not determine `Q` in the unrestricted sense. This module materializes
//! finite prefixes of the tower and machine-checks the five invariants of
//! Proposition 3.6 at every level.

use crate::canonical::{try_canonical, Canonical};
use crate::inverse::{v_inverse_budgeted, CqViews};
use vqd_budget::{Budget, VqdError};
use vqd_eval::{eval_cq, instance_hom};
use vqd_instance::{IndexedInstance, Instance, NullGen, Value};
use vqd_query::Cq;

/// A materialized prefix of the Theorem 3.3 tower.
///
/// ```
/// use vqd_chase::{CqViews, Tower};
/// use vqd_instance::{DomainNames, Schema};
/// use vqd_query::{parse_program, parse_query, ViewSet};
///
/// let schema = Schema::new([("E", 2)]);
/// let mut names = DomainNames::new();
/// let prog = parse_program(&schema, &mut names, "V(x,y) :- E(x,z), E(z,y).").unwrap();
/// let views = CqViews::new(ViewSet::new(&schema, prog.defs));
/// let q = parse_query(&schema, &mut names, "Q(x,y) :- E(x,a), E(a,b), E(b,y).")
///     .unwrap().as_cq().unwrap().clone();
///
/// let mut tower = Tower::new(&views, &q);
/// tower.grow_to(&views, 3);
/// assert!(tower.check_invariants(0).all_hold());      // Proposition 3.6
/// let (in_d, in_dp) = tower.separation(&q, 2);
/// assert!(in_d && !in_dp);                            // Q separates the chains
/// ```
#[derive(Clone, Debug)]
pub struct Tower {
    /// `D₀ … D_k`.
    pub d: Vec<Instance>,
    /// `S₀ … S_k` (`Sᵢ = V(Dᵢ)`).
    pub s: Vec<Instance>,
    /// `S'₀ … S'_k` (`S'₀ = ∅`, `S'ᵢ₊₁ = V(D'ᵢ)`).
    pub s_prime: Vec<Instance>,
    /// `D'₀ … D'_k`.
    pub d_prime: Vec<Instance>,
    /// The frozen head `x̄` of the query.
    pub head: Vec<Value>,
    nulls: NullGen,
}

/// One invariant-check report for a tower level (Proposition 3.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvariantReport {
    /// Level `k` the report describes.
    pub level: usize,
    /// (1) there is a homomorphism `D'ₖ → Dₖ` fixing `adom(Dₖ)`.
    pub hom_dprime_to_d: bool,
    /// (2) `S'ₖ₊₁` extends `Sₖ` (reported at level `k`, `k+1` materialized).
    pub sprime_extends_s: bool,
    /// (3) `Dₖ₊₁` extends `Dₖ` and maps back homomorphically fixing
    /// `adom(Dₖ)`.
    pub d_chain: bool,
    /// (4) `Sₖ₊₁` extends `S'ₖ₊₁`.
    pub s_extends_sprime: bool,
    /// (5) `D'ₖ₊₁` extends `D'ₖ` and maps back homomorphically.
    pub dprime_chain: bool,
}

impl InvariantReport {
    /// All five invariants hold.
    pub fn all_hold(&self) -> bool {
        self.hom_dprime_to_d
            && self.sprime_extends_s
            && self.d_chain
            && self.s_extends_sprime
            && self.dprime_chain
    }
}

impl Tower {
    /// Builds the base level from CQ views and a CQ query.
    pub fn new(views: &CqViews, q: &Cq) -> Tower {
        match Tower::try_new(views, q, &Budget::unlimited()) {
            Ok(t) => t,
            Err(e) => panic!("Tower::new: {e}"),
        }
    }

    /// Budgeted, fallible [`Tower::new`]: the base-level chase draws on
    /// `budget`; hypothesis violations and exhaustion become errors.
    pub fn try_new(views: &CqViews, q: &Cq, budget: &Budget) -> Result<Tower, VqdError> {
        let can: Canonical = try_canonical(views, q)?;
        let mut nulls = can.nulls.clone();
        let empty_in = Instance::empty(views.as_view_set().input_schema());
        let d0 = can.frozen_query.clone();
        let s0 = can.s.clone();
        let sp0 = Instance::empty(views.as_view_set().output_schema());
        let dp0 = v_inverse_budgeted(views, &empty_in, &s0, &mut nulls, budget)?;
        Ok(Tower {
            d: vec![d0],
            s: vec![s0],
            s_prime: vec![sp0],
            d_prime: vec![dp0],
            head: can.frozen_head,
            nulls,
        })
    }

    /// Number of materialized levels.
    pub fn levels(&self) -> usize {
        self.d.len()
    }

    /// Materializes one more level.
    pub fn step(&mut self, views: &CqViews) {
        if let Err(e) = self.try_step(views, &Budget::unlimited()) {
            panic!("Tower::step: {e}");
        }
    }

    /// Budgeted [`Tower::step`]. On exhaustion no partial level is
    /// pushed: the tower stays at its previous (consistent) height, so
    /// the caller can report progress and retry with a larger budget.
    pub fn try_step(&mut self, views: &CqViews, budget: &Budget) -> Result<(), VqdError> {
        let k = self.levels() - 1;
        budget.checkpoint_with(&format_args!(
            "tower at {} levels ({} tuples in D_{k})",
            self.levels(),
            self.d[k].total_tuples()
        ))?;
        // Chase into temporaries first; commit all-or-nothing so an
        // exhaustion mid-level cannot leave the four chains ragged.
        let mut nulls = self.nulls.clone();
        let sp_next = views.apply(&self.d_prime[k]);
        let d_next = v_inverse_budgeted(views, &self.d[k], &sp_next, &mut nulls, budget)?;
        let s_next = views.apply(&d_next);
        let dp_next = v_inverse_budgeted(views, &self.d_prime[k], &sp_next, &mut nulls, budget)?;
        self.nulls = nulls;
        self.s_prime.push(sp_next);
        self.d.push(d_next);
        self.s.push(s_next);
        self.d_prime.push(dp_next);
        Ok(())
    }

    /// Materializes levels until `target` levels exist.
    pub fn grow_to(&mut self, views: &CqViews, target: usize) {
        while self.levels() < target {
            self.step(views);
        }
    }

    /// Budgeted [`Tower::grow_to`]: stops cleanly at the first level
    /// that exceeds the budget, leaving every fully-materialized level
    /// intact and usable.
    pub fn try_grow_to(
        &mut self,
        views: &CqViews,
        target: usize,
        budget: &Budget,
    ) -> Result<(), VqdError> {
        while self.levels() < target {
            self.try_step(views, budget)?;
        }
        Ok(())
    }

    /// Checks the Proposition 3.6 invariants at level `k`
    /// (requires level `k+1` to be materialized).
    pub fn check_invariants(&self, k: usize) -> InvariantReport {
        assert!(k + 1 < self.levels(), "check_invariants needs level k+1");
        let fix_d: Vec<Value> = self.d[k]
            .adom()
            .intersection(&self.d_prime[k].adom())
            .copied()
            .collect();
        // Both hom tests at this level target D_k: index it once.
        let d_k_index = IndexedInstance::from_instance(&self.d[k]);
        let hom1 = instance_hom(&self.d_prime[k], &d_k_index, &fix_d).is_some();
        let sprime_ext = self.s_prime[k + 1].is_extension_of(&self.s[k]);
        let d_ext = self.d[k + 1].is_extension_of(&self.d[k]);
        let fix_dk: Vec<Value> = self.d[k].adom().into_iter().collect();
        let d_hom = instance_hom(&self.d[k + 1], &d_k_index, &fix_dk).is_some();
        let s_ext = self.s[k + 1].is_extension_of(&self.s_prime[k + 1]);
        let dp_ext = self.d_prime[k + 1].is_extension_of(&self.d_prime[k]);
        let fix_dpk: Vec<Value> = self.d_prime[k].adom().into_iter().collect();
        let dp_hom = instance_hom(&self.d_prime[k + 1], &self.d_prime[k], &fix_dpk).is_some();
        InvariantReport {
            level: k,
            hom_dprime_to_d: hom1,
            sprime_extends_s: sprime_ext,
            d_chain: d_ext && d_hom,
            s_extends_sprime: s_ext,
            dprime_chain: dp_ext && dp_hom,
        }
    }

    /// The separation at the heart of the proof: `x̄ ∈ Q(Dₖ)` for every
    /// level, while `x̄ ∉ Q(D'ₖ)` (when the Prop 3.5 test failed).
    pub fn separation(&self, q: &Cq, k: usize) -> (bool, bool) {
        let in_d = eval_cq(q, &self.d[k]).contains(&self.head);
        let in_dp = eval_cq(q, &self.d_prime[k]).contains(&self.head);
        (in_d, in_dp)
    }

    /// Convergence probe: at level `k`, how far apart are `Sₖ` and `S'ₖ`
    /// (tuples in `Sₖ \ S'ₖ` summed over relations)? In the limit the two
    /// chains produce the same view image.
    pub fn image_gap(&self, k: usize) -> usize {
        let mut gap = 0;
        for (rel, r) in self.s[k].iter() {
            gap += r.difference(self.s_prime[k].rel(rel)).len();
        }
        gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_instance::{DomainNames, Schema};
    use vqd_query::{parse_program, parse_query, ViewSet};

    fn schema() -> Schema {
        Schema::new([("E", 2)])
    }

    fn views(src: &str) -> CqViews {
        let s = schema();
        let mut names = DomainNames::new();
        let prog = parse_program(&s, &mut names, src).unwrap();
        CqViews::new(ViewSet::new(&s, prog.defs))
    }

    fn cq(src: &str) -> Cq {
        let mut names = DomainNames::new();
        parse_query(&schema(), &mut names, src)
            .unwrap()
            .as_cq()
            .unwrap()
            .clone()
    }

    /// The classic non-determined pair: 2-path views, 3-path query.
    fn classic() -> (CqViews, Cq) {
        (
            views("V(x,y) :- E(x,z), E(z,y)."),
            cq("Q(x,y) :- E(x,a), E(a,b), E(b,y)."),
        )
    }

    #[test]
    fn invariants_hold_on_nondetermined_pair() {
        let (v, q) = classic();
        let mut t = Tower::new(&v, &q);
        t.grow_to(&v, 4);
        for k in 0..3 {
            let rep = t.check_invariants(k);
            assert!(rep.all_hold(), "invariants failed at level {k}: {rep:?}");
        }
    }

    #[test]
    fn separation_persists_along_the_tower() {
        let (v, q) = classic();
        let mut t = Tower::new(&v, &q);
        t.grow_to(&v, 4);
        for k in 0..4 {
            let (in_d, in_dp) = t.separation(&q, k);
            assert!(in_d, "x̄ must stay in Q(D_{k})");
            assert!(!in_dp, "x̄ must stay out of Q(D'_{k})");
        }
    }

    #[test]
    fn tower_is_monotone_in_size() {
        let (v, q) = classic();
        let mut t = Tower::new(&v, &q);
        t.grow_to(&v, 3);
        for k in 0..2 {
            assert!(t.d[k + 1].total_tuples() >= t.d[k].total_tuples());
            assert!(t.d_prime[k + 1].total_tuples() >= t.d_prime[k].total_tuples());
        }
    }

    #[test]
    fn image_gap_is_finite_and_reported() {
        let (v, q) = classic();
        let mut t = Tower::new(&v, &q);
        t.grow_to(&v, 3);
        // The gap at level k is |S_k \ S'_k|; it is nonzero at low levels
        // for this pair (S' lags one chase step behind).
        let gaps: Vec<usize> = (0..3).map(|k| t.image_gap(k)).collect();
        assert_eq!(gaps.len(), 3);
        assert!(gaps[0] > 0);
    }

    #[test]
    fn determined_pair_gives_coinciding_images_quickly() {
        // Identity views: D'₀ already reproduces S₀ exactly and the tower
        // stabilizes: S'₁ = S₀.
        let v = views("V(x,y) :- E(x,y).");
        let q = cq("Q(x,y) :- E(x,y).");
        let mut t = Tower::new(&v, &q);
        t.grow_to(&v, 2);
        assert!(t.s[0].is_subinstance_of(&t.s_prime[1]));
        assert!(t.s_prime[1].is_subinstance_of(&t.s[0]));
    }
}
