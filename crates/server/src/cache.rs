//! Cross-request instance cache: sharded, LRU, capacity- and
//! byte-bounded.
//!
//! Workers historically rebuilt every `IndexedInstance` from the wire
//! payload, even when consecutive requests chased the same extent — the
//! repeat-workload shape of view-based access control, where one fixed
//! extent is queried many times. The cache closes that gap with two
//! entry kinds sharing one bounded store:
//!
//! * **handle entries** (`h<seq>`), registered by `put_instance`: the
//!   extent's *source text* plus a name-sensitive fingerprint. The
//!   source is re-parsed into each request's local [`DomainNames`], so a
//!   handle request interns constants exactly as the inline form would —
//!   which is what makes hit and miss replies byte-identical;
//! * **derived entries** (`d:…`), inserted by the engine after a chase:
//!   the canonical database `V_∅^{-1}(E)` as a shared
//!   [`Arc<IndexedInstance>`], keyed by the request context (schema,
//!   views, query sources) plus the extent fingerprint. A later request
//!   with the same key evaluates over the cached index with **zero**
//!   index builds.
//!
//! A handle is a cache *reference*, not a lease: under entry or byte
//! pressure the LRU policy may evict it, and the client re-puts on an
//! `unknown-handle` error. Explicit `evict_instance` removes only the
//! named handle; derived entries age out via LRU.
//!
//! Counters (`cache.hits`/`cache.misses`/`cache.evictions`/`cache.puts`)
//! and gauges (`cache.entries`/`cache.bytes`) are mirrored into the
//! server's observability [`Registry`] so `stats` and BENCH_server.json
//! see them without a separate plumbing path.
//!
//! With [`CacheConfig::disk`] set, a crash-only [`DiskTier`] backs the
//! RAM LRU: `insert_index` writes through to an append-only segment, a
//! RAM miss falls back to a verified disk load that is promoted back
//! into the LRU, the handle table snapshots atomically on every
//! mutation, and startup warm-restores both — so a restarted server
//! answers its first handle request with zero index builds. Every disk
//! failure (torn write, truncation, bit flip, I/O error, fingerprint
//! mismatch) degrades to a counted clean miss; see [`crate::disk`].
//!
//! [`DomainNames`]: vqd_instance::DomainNames

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use vqd_instance::IndexedInstance;
use vqd_obs::Registry;

use crate::disk::{DiskConfig, DiskTier};

/// Sizing knobs for the cross-request instance cache. Lives inside
/// [`crate::server::ServerCaps`] so existing `ServerConfig` literals
/// keep compiling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Lock shards. Keys hash to a shard; bounds are split evenly.
    pub shards: usize,
    /// Total entry cap across shards (handles + derived).
    pub max_entries: usize,
    /// Total approximate-byte cap across shards.
    pub max_bytes: u64,
    /// Optional crash-only persistent tier (see [`crate::disk`]).
    /// `None` keeps the cache purely in-memory, exactly as before.
    pub disk: Option<DiskConfig>,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig { shards: 4, max_entries: 128, max_bytes: 64 << 20, disk: None }
    }
}

/// A registered extent: everything needed to replay it into a request's
/// local interning context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HandleEntry {
    /// Schema spec the extent was validated against at put time.
    pub schema: String,
    /// The extent source text, re-parsed per request.
    pub extent: String,
    /// Name-sensitive fingerprint (see [`crate::engine`]): equal
    /// fingerprints under one request context mean identical chases.
    pub fingerprint: String,
    /// Ground tuples in the extent.
    pub tuples: u64,
}

enum Slot {
    Handle(HandleEntry),
    Index(Arc<IndexedInstance>),
}

struct Entry {
    slot: Slot,
    bytes: u64,
    /// LRU stamp from the cache-wide clock; smallest = evict first.
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Entry>,
}

/// Point-in-time cache counters (served by the `cache_stats` op).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Live entries (handles + derived).
    pub entries: u64,
    /// Approximate bytes held.
    pub bytes: u64,
    /// Derived-index lookups that found a cached chase.
    pub hits: u64,
    /// Derived-index lookups that had to chase and insert.
    pub misses: u64,
    /// Entries removed — LRU pressure plus explicit evicts.
    pub evictions: u64,
    /// `put_instance` registrations.
    pub puts: u64,
    /// Disk loads that returned a verified record (0 without a tier).
    pub disk_hits: u64,
    /// Disk lookups that found nothing usable (0 without a tier).
    pub disk_misses: u64,
    /// Records appended to the segment (0 without a tier).
    pub disk_spills: u64,
    /// Disk hits promoted back into the RAM LRU (0 without a tier).
    pub disk_promotions: u64,
    /// Records dropped for bad framing/checksum/fingerprint.
    pub disk_corrupt_dropped: u64,
    /// Disk I/O failures demoted to clean misses.
    pub disk_io_errors: u64,
    /// Live segment bytes (0 without a tier).
    pub disk_bytes: u64,
}

/// The sharded LRU described in the module docs.
pub struct InstanceCache {
    shards: Vec<Mutex<Shard>>,
    config: CacheConfig,
    tier: Option<Arc<DiskTier>>,
    clock: AtomicU64,
    next_handle: AtomicU64,
    entries: AtomicU64,
    bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    puts: AtomicU64,
    registry: Arc<Registry>,
}

fn hash64(parts: &[&str]) -> u64 {
    let mut h = DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

/// Stable derived-entry key for one `(request context, extent)` pair.
/// The context hash covers the schema/views/query *sources* because the
/// request-local constant interning (and therefore the cached index's
/// value ids and the rendered answer order) depends on them.
pub fn derived_key(schema: &str, views: &str, query: &str, fingerprint: &str) -> String {
    format!("d:{:016x}:{fingerprint}", hash64(&[schema, views, query]))
}

impl InstanceCache {
    /// A cache mirroring its counters into `registry`. With a disk
    /// config, opens (or recovers) the persistent tier and
    /// warm-restores the handle table plus the newest derived entries
    /// that fit the RAM budget — the index rebuilds happen *here*, at
    /// startup, so the first post-restart request is a pure RAM hit
    /// with zero index builds in its work envelope.
    pub fn new(config: CacheConfig, registry: Arc<Registry>) -> InstanceCache {
        let shards = config.shards.max(1);
        let tier = config
            .disk
            .clone()
            .map(|d| Arc::new(DiskTier::open(d, Arc::clone(&registry))));
        let cache = InstanceCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            config,
            tier,
            clock: AtomicU64::new(0),
            next_handle: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            registry,
        };
        cache.warm_restore();
        cache
    }

    /// The sizing this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The persistent tier, when configured (tests arm faults on it).
    pub fn disk(&self) -> Option<&Arc<DiskTier>> {
        self.tier.as_ref()
    }

    /// Rehydrates RAM state from the disk tier (no-op without one):
    /// handle table + `next_handle` from the snapshot, then derived
    /// entries newest-spill-first until the RAM budget is full,
    /// inserted oldest-first so recency order survives the restart.
    fn warm_restore(&self) {
        let Some(tier) = self.tier.clone() else { return };
        if let Some((handles, next_handle)) = tier.restore_handles() {
            self.next_handle.store(next_handle, Ordering::Relaxed);
            for (handle, entry) in handles {
                let bytes = (entry.schema.len()
                    + entry.extent.len()
                    + entry.fingerprint.len()) as u64;
                self.insert(handle, Slot::Handle(entry), bytes);
            }
        }
        // Only the budget left over after the handle table: restored
        // handles must never be evicted by the entries they anchor.
        let room_entries = self
            .config
            .max_entries
            .saturating_sub(self.entries.load(Ordering::Relaxed) as usize);
        let room_bytes =
            self.config.max_bytes.saturating_sub(self.bytes.load(Ordering::Relaxed));
        let mut picked = Vec::new();
        let mut picked_bytes = 0u64;
        for key in tier.keys_newest_first() {
            if picked.len() >= room_entries || picked_bytes >= room_bytes {
                break; // older spills stay disk-resident: promote on miss
            }
            if let Some(index) = tier.load(&key) {
                picked_bytes += index.approx_bytes();
                picked.push((key, index));
            }
        }
        for (key, index) in picked.into_iter().rev() {
            let bytes = index.approx_bytes();
            self.insert(key, Slot::Index(index), bytes);
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        &self.shards[(hash64(&[key]) as usize) % self.shards.len()]
    }

    fn lock(&self, key: &str) -> std::sync::MutexGuard<'_, Shard> {
        // Cache state stays consistent across a poisoned lock (plain
        // maps + saturating totals), so recover rather than wedge.
        match self.shard(key).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn publish_gauges(&self) {
        self.registry.gauge("cache.entries").set(self.entries.load(Ordering::Relaxed));
        self.registry.gauge("cache.bytes").set(self.bytes.load(Ordering::Relaxed));
    }

    /// Registers an extent, returning its fresh handle (`h<seq>`).
    pub fn put(&self, entry: HandleEntry) -> String {
        let handle = format!("h{}", self.next_handle.fetch_add(1, Ordering::Relaxed) + 1);
        let bytes =
            (entry.schema.len() + entry.extent.len() + entry.fingerprint.len()) as u64;
        self.insert(handle.clone(), Slot::Handle(entry), bytes);
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.registry.counter("cache.puts").inc();
        self.snapshot_handles();
        handle
    }

    /// Looks up a handle, refreshing its LRU stamp.
    pub fn get_handle(&self, handle: &str) -> Option<HandleEntry> {
        let stamp = self.tick();
        let mut shard = self.lock(handle);
        let entry = shard.map.get_mut(handle)?;
        entry.stamp = stamp;
        match &entry.slot {
            Slot::Handle(h) => Some(h.clone()),
            Slot::Index(_) => None, // derived keys are not handles
        }
    }

    /// Removes a handle explicitly. Counts as an eviction when it
    /// existed. (Its derived entries age out via LRU: they are keyed by
    /// fingerprint, so another live handle may still be using them.)
    pub fn evict_handle(&self, handle: &str) -> bool {
        let removed = {
            let mut shard = self.lock(handle);
            match shard.map.get(handle) {
                Some(Entry { slot: Slot::Handle(_), .. }) => shard.map.remove(handle),
                _ => None,
            }
        };
        match removed {
            Some(entry) => {
                self.note_removed(&entry);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.registry.counter("cache.evictions").inc();
                self.publish_gauges();
                self.snapshot_handles();
                true
            }
            None => false,
        }
    }

    /// Fetches a cached derived index, counting a RAM hit or miss. On a
    /// RAM miss with a disk tier, falls back to a verified disk load
    /// and promotes the record back into the LRU — the caller skips the
    /// chase either way, but the promotion's index rebuild is honestly
    /// charged to the requesting worker's profile (a cheaper miss, not
    /// a free hit).
    pub fn get_index(&self, key: &str) -> Option<Arc<IndexedInstance>> {
        let stamp = self.tick();
        let found = {
            let mut shard = self.lock(key);
            shard.map.get_mut(key).and_then(|entry| {
                entry.stamp = stamp;
                match &entry.slot {
                    Slot::Index(idx) => Some(Arc::clone(idx)),
                    Slot::Handle(_) => None,
                }
            })
        };
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.registry.counter("cache.hits").inc();
            return found;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.registry.counter("cache.misses").inc();
        let tier = self.tier.as_ref()?;
        let index = tier.load(key)?;
        tier.note_promotion();
        self.insert(key.to_owned(), Slot::Index(Arc::clone(&index)), index.approx_bytes());
        Some(index)
    }

    /// Stores a derived index under its [`derived_key`], writing
    /// through to the disk tier (spill-then-index on disk; a no-op when
    /// the key is already segment-resident — derived keys are
    /// content-addressed, so equal keys mean equal chases).
    pub fn insert_index(&self, key: String, index: Arc<IndexedInstance>) {
        let bytes = index.approx_bytes();
        if let Some(tier) = &self.tier {
            tier.spill(&key, &index);
        }
        self.insert(key, Slot::Index(index), bytes);
    }

    /// Current counters (disk fields all zero without a tier).
    pub fn stats(&self) -> CacheCounters {
        let disk = self.tier.as_ref().map(|t| t.counters()).unwrap_or_default();
        CacheCounters {
            entries: self.entries.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            disk_hits: disk.hits,
            disk_misses: disk.misses,
            disk_spills: disk.spills,
            disk_promotions: disk.promotions,
            disk_corrupt_dropped: disk.corrupt_dropped,
            disk_io_errors: disk.io_errors,
            disk_bytes: disk.bytes,
        }
    }

    fn note_removed(&self, entry: &Entry) {
        self.entries.fetch_sub(1, Ordering::Relaxed);
        self.bytes.fetch_sub(entry.bytes, Ordering::Relaxed);
    }

    fn insert(&self, key: String, slot: Slot, bytes: u64) {
        let stamp = self.tick();
        let shards = self.shards.len() as u64;
        // Per-shard budgets: totals split evenly, at least one entry so
        // a hot shard can always hold its newest value.
        let max_entries = (self.config.max_entries as u64 / shards).max(1);
        let max_bytes = (self.config.max_bytes / shards).max(1);
        let mut victims: Vec<(String, Entry)> = Vec::new();
        {
            let mut shard = self.lock(&key);
            if let Some(old) = shard.map.remove(&key) {
                self.note_removed(&old);
            }
            shard.map.insert(key, Entry { slot, bytes, stamp });
            self.entries.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(bytes, Ordering::Relaxed);
            // Evict LRU entries until this shard fits its budgets. The
            // newest entry (max stamp) is never evicted even when it
            // alone exceeds the byte budget — an oversized instance gets
            // cached and becomes the next victim instead of thrashing.
            loop {
                let shard_bytes: u64 = shard.map.values().map(|e| e.bytes).sum();
                if shard.map.len() as u64 <= max_entries && shard_bytes <= max_bytes {
                    break;
                }
                let Some(victim) = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(k, _)| k.clone())
                else {
                    break;
                };
                let is_newest = shard
                    .map
                    .get(&victim)
                    .is_some_and(|e| e.stamp == stamp);
                if is_newest {
                    break;
                }
                if let Some(old) = shard.map.remove(&victim) {
                    self.note_removed(&old);
                    victims.push((victim, old));
                }
            }
        }
        if !victims.is_empty() {
            let evicted = victims.len() as u64;
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.registry.counter("cache.evictions").add(evicted);
        }
        self.publish_gauges();
        // Disk work happens strictly after the shard lock is released:
        // the shard and tier locks are never held together (the lock
        // ordering invariant that keeps promote-on-hit deadlock-free).
        if let Some(tier) = &self.tier {
            let mut lost_handle = false;
            for (victim_key, victim) in &victims {
                match &victim.slot {
                    // Write-through makes this a cheap no-op for keys
                    // already segment-resident; it is the safety net
                    // that keeps "evicted ⇒ on disk" true regardless of
                    // how the entry got into RAM.
                    Slot::Index(index) => tier.spill(victim_key, index),
                    Slot::Handle(_) => lost_handle = true,
                }
            }
            if lost_handle {
                self.snapshot_handles();
            }
        }
    }

    /// Atomically snapshots the current handle table into the disk tier
    /// (no-op without one). Locks shards one at a time, never while
    /// holding another lock.
    fn snapshot_handles(&self) {
        let Some(tier) = &self.tier else { return };
        let mut handles: Vec<(String, HandleEntry)> = Vec::new();
        for shard in &self.shards {
            let guard = match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            for (key, entry) in guard.map.iter() {
                if let Slot::Handle(h) = &entry.slot {
                    handles.push((key.clone(), h.clone()));
                }
            }
        }
        handles.sort_by(|a, b| a.0.cmp(&b.0));
        tier.snapshot_handles(&handles, self.next_handle.load(Ordering::Relaxed));
    }

    /// Test hook: poisons the shard holding `key` by panicking a scoped
    /// thread that owns its lock, so suites can prove every public
    /// operation recovers instead of wedging.
    #[doc(hidden)]
    pub fn poison_shard_for_tests(&self, key: &str) {
        let shard = self.shard(key);
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = shard.lock().unwrap();
                    panic!("poisoning shard for tests");
                })
                .join()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_instance::{named, Instance, Schema};

    fn cache(config: CacheConfig) -> InstanceCache {
        InstanceCache::new(config, Arc::new(Registry::new()))
    }

    fn handle_entry(tag: &str) -> HandleEntry {
        HandleEntry {
            schema: "V/2".into(),
            extent: format!("V({tag},B)."),
            fingerprint: format!("fp-{tag}"),
            tuples: 1,
        }
    }

    fn small_index(n: u32) -> Arc<IndexedInstance> {
        let s = Schema::new([("E", 2)]);
        let mut d = Instance::empty(&s);
        for i in 0..n {
            d.insert_named("E", vec![named(i), named(i + 1)]);
        }
        IndexedInstance::from_instance(&d).into_shared()
    }

    #[test]
    fn put_get_evict_round_trip() {
        let c = cache(CacheConfig::default());
        let e = handle_entry("A");
        let h = c.put(e.clone());
        assert_eq!(c.get_handle(&h), Some(e));
        assert!(c.evict_handle(&h));
        assert_eq!(c.get_handle(&h), None);
        assert!(!c.evict_handle(&h), "second evict finds nothing");
        let st = c.stats();
        assert_eq!(st.puts, 1);
        assert_eq!(st.evictions, 1);
        assert_eq!(st.entries, 0);
        assert_eq!(st.bytes, 0);
    }

    #[test]
    fn derived_lookups_count_hits_and_misses() {
        let c = cache(CacheConfig::default());
        let key = derived_key("E/2", "V(x,y) :- E(x,y).", "Q(x) :- E(x,y).", "fp");
        assert!(c.get_index(&key).is_none());
        c.insert_index(key.clone(), small_index(3));
        assert!(c.get_index(&key).is_some());
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert!(st.bytes > 0);
    }

    #[test]
    fn entry_pressure_evicts_least_recently_used() {
        let c = cache(CacheConfig { shards: 1, max_entries: 2, ..CacheConfig::default() });
        let h1 = c.put(handle_entry("A"));
        let h2 = c.put(handle_entry("B"));
        assert!(c.get_handle(&h1).is_some()); // refresh h1: h2 is now LRU
        let h3 = c.put(handle_entry("C"));
        assert!(c.get_handle(&h2).is_none(), "LRU entry must be evicted");
        assert!(c.get_handle(&h1).is_some());
        assert!(c.get_handle(&h3).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn byte_pressure_evicts_but_keeps_the_newest() {
        let big = small_index(64);
        let budget = big.approx_bytes() + big.approx_bytes() / 2;
        let c = cache(CacheConfig {
            shards: 1,
            max_entries: 1024,
            max_bytes: budget,
            disk: None,
        });
        c.insert_index("d:1".into(), small_index(64));
        c.insert_index("d:2".into(), small_index(64)); // over budget: d:1 goes
        assert!(c.get_index("d:1").is_none());
        assert!(c.get_index("d:2").is_some());
        assert!(c.stats().evictions >= 1);
        assert!(c.stats().bytes <= budget);
        // An entry larger than the whole budget still lands (and is the
        // sole survivor) instead of thrashing forever.
        let c =
            cache(CacheConfig { shards: 1, max_entries: 1024, max_bytes: 8, disk: None });
        c.insert_index("d:big".into(), small_index(64));
        assert!(c.get_index("d:big").is_some());
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn derived_keys_separate_contexts_and_fingerprints() {
        let a = derived_key("E/2", "V(x,y) :- E(x,y).", "Q(x) :- E(x,y).", "fp");
        let b = derived_key("E/2", "V(x,y) :- E(x,y).", "Q(x,z) :- E(x,z).", "fp");
        let c = derived_key("E/2", "V(x,y) :- E(x,y).", "Q(x) :- E(x,y).", "fp2");
        assert_ne!(a, b, "query source is part of the context");
        assert_ne!(a, c, "fingerprint is part of the key");
        assert_eq!(a, derived_key("E/2", "V(x,y) :- E(x,y).", "Q(x) :- E(x,y).", "fp"));
    }

    #[test]
    fn handles_and_derived_keys_never_cross_resolve() {
        let c = cache(CacheConfig::default());
        let h = c.put(handle_entry("A"));
        assert!(c.get_index(&h).is_none(), "a handle is not a derived index");
        c.insert_index("d:x".into(), small_index(2));
        assert!(c.get_handle("d:x").is_none(), "a derived key is not a handle");
    }
}
