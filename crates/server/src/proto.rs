//! The `vqd-server` wire protocol.
//!
//! Newline-delimited JSON over TCP: each request is one [`Envelope`] on
//! one line, each reply one [`Response`] on one line, in order. The
//! envelope carries a protocol version, a client-chosen correlation id,
//! the client's *requested* resource [`Limits`] (the server clamps them
//! against its own caps via [`vqd_budget::Budget::min_of`]), and one
//! [`Request`] naming an effective procedure from the paper.
//!
//! Every reply states how the request ended ([`Outcome`]) plus the
//! [`WireStats`] the budget observed, so clients can distinguish:
//!
//! * `ok` — the procedure ran to completion; the verdict is inside;
//! * `exhausted` — a resource limit tripped ([`Outcome::Exhausted`]
//!   carries the reason and the partial-progress description);
//! * `overloaded` — admission control rejected the request *before*
//!   doing any work ([`Outcome::Overloaded`] reports the queue state);
//! * `error` — the request itself was bad ([`ErrorKind`] taxonomy).
//!
//! Queries, views, schemas, and instances travel as source text in the
//! workspace's surface syntax (`Q(x,z) :- E(x,y), E(y,z).`), which keeps
//! the protocol stable across internal representation changes.
//!
//! **Pipelining.** A client may write any number of request lines
//! before reading a reply; the server answers them in request order on
//! that connection — the n-th reply line always answers the n-th
//! request line, whatever order the work completed in, and whether the
//! outcome is `ok`, `exhausted`, `overloaded`, or `error`. The
//! correlation id therefore stays a convenience for the client, not a
//! requirement for matching ([`crate::Client::call_many`] still checks
//! it). Nothing about the framing changed to allow this: one envelope
//! per line, one reply per line, in order, as in v1.

use serde::json::{self, Value};
use vqd_budget::WorkStats;
use vqd_obs::{MetricsSnapshot, RegistrySnapshot};

/// Version tag carried in every envelope and response. Servers reject
/// other versions with [`ErrorKind::Version`] rather than guessing.
pub const PROTOCOL_VERSION: u64 = 1;

/// Client-requested resource limits. `None` means "no preference" —
/// the server still applies its own caps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Limits {
    /// Wall-clock limit in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Checkpoint (work-step) limit.
    pub step_limit: Option<u64>,
    /// Materialized-tuple limit.
    pub tuple_limit: Option<u64>,
}

impl Limits {
    /// No client-side preferences.
    pub fn none() -> Limits {
        Limits::default()
    }

    /// Builds the client-side [`vqd_budget::Budget`] these limits ask for.
    pub fn to_budget(&self) -> vqd_budget::Budget {
        let mut b = vqd_budget::Budget::unlimited();
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline(std::time::Duration::from_millis(ms));
        }
        if let Some(steps) = self.step_limit {
            b = b.with_step_limit(steps);
        }
        if let Some(tuples) = self.tuple_limit {
            b = b.with_tuple_limit(tuples);
        }
        b
    }
}

/// One effective procedure, as a service request. Query/view/instance
/// payloads are source text parsed server-side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Unrestricted CQ determinacy (Theorem 3.7 chase test) plus the
    /// canonical rewriting when determined.
    Decide {
        /// Schema spec, e.g. `"E/2,P/1"`.
        schema: String,
        /// View definitions (one or more rules).
        views: String,
        /// The query (one rule).
        query: String,
    },
    /// Canonical rewriting extraction: like `Decide` but the answer is
    /// the (minimized) rewriting itself.
    Rewrite {
        /// Schema spec.
        schema: String,
        /// View definitions.
        views: String,
        /// The query.
        query: String,
    },
    /// Certain answers under sound views on a concrete view extent.
    Certain {
        /// Schema spec.
        schema: String,
        /// View definitions.
        views: String,
        /// The query.
        query: String,
        /// Ground facts over the *view output* schema, e.g. `"V(a,b)."`.
        extent: String,
    },
    /// [`Request::Certain`] whose extent is a cached instance handle
    /// (from [`Request::PutInstance`]) instead of inline facts. Same
    /// wire op: the `extent` field carries `{"handle": "..."}` instead
    /// of a string, so v1 servers reject it cleanly as a protocol error
    /// and v1 clients never produce it.
    CertainHandle {
        /// Schema spec.
        schema: String,
        /// View definitions.
        views: String,
        /// The query.
        query: String,
        /// Handle returned by a prior `put_instance`.
        handle: String,
    },
    /// Registers a view extent in the server's cross-request cache and
    /// returns a handle naming it. The handle is a cache reference, not
    /// a lease: it may be evicted under pressure, and later requests
    /// then fail with [`ErrorKind::UnknownHandle`] (re-put to recover).
    PutInstance {
        /// Schema spec for the *view output* schema the facts live in.
        schema: String,
        /// Ground facts, e.g. `"V(a,b). V(b,c)."`.
        extent: String,
    },
    /// Drops a cached instance handle.
    EvictInstance {
        /// Handle returned by a prior `put_instance`.
        handle: String,
    },
    /// Snapshot of the cross-request cache counters.
    CacheStats,
    /// Syntactic fragment classification of a (views, query) pair:
    /// which decidability fragment it falls in and how a determinacy
    /// request over it would be routed. Purely structural — never
    /// parses instances, never chases, never consumes budget beyond
    /// parsing.
    Classify {
        /// Schema spec.
        schema: String,
        /// View definitions.
        views: String,
        /// The query.
        query: String,
    },
    /// Bounded semantic containment `q1 ⊆ q2` by exhaustive search.
    Containment {
        /// Schema spec.
        schema: String,
        /// Left query.
        q1: String,
        /// Right query.
        q2: String,
        /// Largest active-domain size to search.
        max_domain: u64,
        /// Cap on enumerated instances.
        space_limit: u64,
    },
    /// Finite determinacy: sound positive via the chase, bounded
    /// counterexample search, `open` otherwise.
    Finite {
        /// Schema spec.
        schema: String,
        /// View definitions.
        views: String,
        /// The query.
        query: String,
        /// Largest active-domain size to search.
        max_domain: u64,
        /// Cap on enumerated instances.
        space_limit: u64,
    },
    /// One exhaustive semantic determinacy scan at a fixed domain size.
    Semantic {
        /// Schema spec.
        schema: String,
        /// View definitions.
        views: String,
        /// The query.
        query: String,
        /// The active-domain size to scan.
        domain: u64,
        /// Cap on enumerated instances.
        space_limit: u64,
    },
    /// Server metrics snapshot.
    Stats,
    /// The flight recorder's current window: the last N request digests
    /// (op, outcome, fragment, phase timings, work stats) as JSONL.
    Flight,
    /// The full metrics registry rendered as a Prometheus text-exposition
    /// document (counters, gauges, cumulative-bucket histograms).
    MetricsProm,
    /// Asks the server to drain and stop.
    Shutdown,
    /// Deliberately panics the worker (containment tests). Servers
    /// reply `unsupported` unless started with `enable_debug_ops`.
    DebugPanic,
}

impl Request {
    /// The wire name of this operation.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Decide { .. } => "decide_unrestricted",
            Request::Rewrite { .. } => "rewrite",
            Request::Certain { .. } | Request::CertainHandle { .. } => "certain_sound",
            Request::PutInstance { .. } => "put_instance",
            Request::EvictInstance { .. } => "evict_instance",
            Request::CacheStats => "cache_stats",
            Request::Classify { .. } => "classify",
            Request::Containment { .. } => "containment",
            Request::Finite { .. } => "decide_finite",
            Request::Semantic { .. } => "check_exhaustive",
            Request::Stats => "stats",
            Request::Flight => "flight",
            Request::MetricsProm => "metrics_prom",
            Request::Shutdown => "shutdown",
            Request::DebugPanic => "debug_panic",
        }
    }
}

/// One request on the wire: version, correlation id, limits, operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub version: u64,
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: String,
    /// Requested resource limits.
    pub limits: Limits,
    /// Ask the server to attach a per-request execution profile (engine
    /// counter deltas) to the reply. Additive: absent on the wire means
    /// `false`, so v1 peers interoperate unchanged.
    pub profile: bool,
    /// Ask the server to record span events while executing this
    /// request and attach them to the reply as JSONL. Additive like
    /// `profile`: absent on the wire means `false`.
    pub trace: bool,
    /// Requested intra-request parallelism: how many shards the engine
    /// may fan a single request out across on the server's engine pool.
    /// Additive like `profile`: absent on the wire means `None`
    /// (sequential), and the server clamps the value against its
    /// `--engine-threads` cap, so it is a request, not a demand.
    pub parallelism: Option<u64>,
    /// The operation.
    pub request: Request,
}

impl Envelope {
    /// Wraps a request in a current-version envelope.
    pub fn new(id: impl Into<String>, limits: Limits, request: Request) -> Envelope {
        Envelope {
            version: PROTOCOL_VERSION,
            id: id.into(),
            limits,
            profile: false,
            trace: false,
            parallelism: None,
            request,
        }
    }

    /// Requests a per-request execution profile in the reply.
    pub fn with_profile(mut self, profile: bool) -> Envelope {
        self.profile = profile;
        self
    }

    /// Requests a span trace of the execution in the reply.
    pub fn with_trace(mut self, trace: bool) -> Envelope {
        self.trace = trace;
        self
    }

    /// Requests `parallelism`-way intra-request fan-out (clamped by the
    /// server's engine pool).
    pub fn with_parallelism(mut self, parallelism: u64) -> Envelope {
        self.parallelism = Some(parallelism);
        self
    }
}

/// Resource accounting echoed with every response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Checkpoints passed.
    pub steps: u64,
    /// Tuples charged.
    pub tuples: u64,
    /// Wall-clock time in milliseconds.
    pub elapsed_ms: u64,
    /// Full index (re)builds performed while serving the request.
    pub index_builds: u64,
    /// Tuples indexed incrementally (delta maintenance, no rebuild).
    pub index_tuples: u64,
    /// Widest engine fan-out any phase of the request actually used
    /// (0 = everything ran sequentially). Additive: encoded only when
    /// nonzero, absent decodes to 0.
    pub threads_used: u64,
}

/// Per-request phase timeline: the additive `timeline` reply section.
///
/// The server stamps six lifecycle points per request — frame-complete,
/// admission-enqueue, worker-start, worker-end, reorder-release,
/// write-drained — and reports the five intervals between them here, in
/// microseconds. Attached on the wire only when the envelope asked for a
/// profile; absent keys decode to `None`, so v1 peers interoperate
/// unchanged.
///
/// Latency semantics note: the per-op `op.{op}.latency_ms` registry
/// histogram measures **execution time only** (worker-start →
/// worker-end, the same interval as [`Timeline::exec_us`]); framing,
/// queue wait, reorder wait, and write drain are *not* in it. The
/// client-observable end-to-end latency (frame-complete →
/// write-drained) is recorded separately in the `server.e2e_ms`
/// histogram, and each interval feeds its own
/// `server.phase.{frame,queue,exec,reorder,write}_ms` histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Timeline {
    /// frame-complete → admission-enqueue (decode + admission), µs.
    pub frame_us: u64,
    /// admission-enqueue → worker-start (bounded-queue wait), µs.
    pub queue_us: u64,
    /// worker-start → worker-end (execution), µs.
    pub exec_us: u64,
    /// worker-end → reorder-release (pipelining reorder-buffer wait
    /// until every earlier sequence on the connection is serialized), µs.
    pub reorder_us: u64,
    /// reorder-release → write-drained, µs. Always 0 on the wire: a
    /// reply is serialized *at* release, so its own drain completes
    /// after encoding. The measured drain feeds `server.phase.write_ms`
    /// and the slow-request log instead; at loopback it is ~0.
    pub write_us: u64,
    /// Frame-complete instant, carried in-process so the event loop can
    /// compute end-to-end latency at write-drain. Never on the wire.
    pub(crate) framed: Option<std::time::Instant>,
    /// Worker-end instant, carried in-process so the event loop can
    /// compute the reorder interval at release. Never on the wire.
    pub(crate) finished: Option<std::time::Instant>,
}

impl Timeline {
    /// Sum of the phase intervals, µs (what should approximate the
    /// client-measured round-trip minus network/client time).
    pub fn total_us(&self) -> u64 {
        self.frame_us + self.queue_us + self.exec_us + self.reorder_us + self.write_us
    }

    /// Encodes the wire form (durations only; instants never leave the
    /// process).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("frame_us", Value::from(self.frame_us)),
            ("queue_us", Value::from(self.queue_us)),
            ("exec_us", Value::from(self.exec_us)),
            ("reorder_us", Value::from(self.reorder_us)),
            ("write_us", Value::from(self.write_us)),
        ])
    }

    /// Decodes [`to_json`](Self::to_json); `None` on shape mismatch.
    pub fn from_json(v: &Value) -> Option<Timeline> {
        let num = |k: &str| v.get(k).and_then(Value::as_u64);
        Some(Timeline {
            frame_us: num("frame_us")?,
            queue_us: num("queue_us")?,
            exec_us: num("exec_us")?,
            reorder_us: num("reorder_us").unwrap_or(0),
            write_us: num("write_us").unwrap_or(0),
            framed: None,
            finished: None,
        })
    }
}

impl From<WorkStats> for WireStats {
    fn from(w: WorkStats) -> WireStats {
        WireStats {
            steps: w.steps,
            tuples: w.tuples,
            elapsed_ms: w.elapsed.as_millis().min(u128::from(u64::MAX)) as u64,
            index_builds: 0,
            index_tuples: 0,
            threads_used: 0,
        }
    }
}

/// The error taxonomy for `error` responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not a valid protocol envelope (bad JSON, missing
    /// fields, unknown op).
    Protocol,
    /// The envelope's version is not [`PROTOCOL_VERSION`].
    Version,
    /// A query/view/schema/instance payload failed to parse.
    Parse,
    /// Structurally invalid input (non-CQ view, arity clash, …).
    InvalidInput,
    /// Two payloads that must share a schema do not.
    SchemaMismatch,
    /// The operation is not supported by this server.
    Unsupported,
    /// The named instance handle is not in the cache (never existed, or
    /// was evicted). Recoverable: `put_instance` again and retry.
    UnknownHandle,
    /// The connection exceeded a server-side I/O deadline (e.g. a
    /// partial request line that never completed). The server drops the
    /// connection after this reply; reconnect to recover.
    Timeout,
    /// The request died inside the engine (a bug server-side; the worker
    /// survived and the connection stays usable).
    Internal,
}

impl ErrorKind {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Version => "version",
            ErrorKind::Parse => "parse",
            ErrorKind::InvalidInput => "invalid-input",
            ErrorKind::SchemaMismatch => "schema-mismatch",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::UnknownHandle => "unknown-handle",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Internal => "internal",
        }
    }

    /// Inverse of [`ErrorKind::as_str`].
    pub fn from_wire(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "protocol" => ErrorKind::Protocol,
            "version" => ErrorKind::Version,
            "parse" => ErrorKind::Parse,
            "invalid-input" => ErrorKind::InvalidInput,
            "schema-mismatch" => ErrorKind::SchemaMismatch,
            "unsupported" => ErrorKind::Unsupported,
            "unknown-handle" => ErrorKind::UnknownHandle,
            "timeout" => ErrorKind::Timeout,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// A rendered determinacy counterexample: two instances with equal view
/// images and different query answers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireCounterexample {
    /// First instance.
    pub d1: String,
    /// Second instance.
    pub d2: String,
    /// The shared view image.
    pub image: String,
    /// `Q(d1)`.
    pub q1: String,
    /// `Q(d2)`.
    pub q2: String,
}

/// Server metrics snapshot on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests that produced an `ok` outcome.
    pub completed_ok: u64,
    /// Requests whose budget tripped (`exhausted` outcomes).
    pub exhausted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// `error`-status responses (protocol + engine errors).
    pub errors: u64,
    /// Requests currently queued (not yet picked up by a worker).
    pub queue_depth: u64,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Connections accepted since start.
    pub connections_total: u64,
    /// Worker threads serving the queue.
    pub workers: u64,
}

/// How a request ended, with its payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Verdict of the unrestricted chase test.
    Decided {
        /// Whether `V` determines `Q` over unrestricted instances.
        determined: bool,
        /// The minimized exact rewriting over `σ_V`, when determined.
        rewriting: Option<String>,
    },
    /// Verdict of rewriting extraction.
    Rewritten {
        /// Whether an exact rewriting exists (over unrestricted
        /// instances; Theorem 3.3 makes this language-independent).
        exists: bool,
        /// The rewriting, when it exists.
        rewriting: Option<String>,
    },
    /// Certain answers under sound views.
    CertainAnswers {
        /// Rendered answer relation, e.g. `{(a,b), (b,c)}`.
        answers: String,
        /// Number of certain tuples.
        count: u64,
    },
    /// Reply to [`Request::PutInstance`]: the extent is cached.
    InstancePut {
        /// Cache handle to pass as `{"handle": ...}` extents.
        handle: String,
        /// Fingerprint of the registered extent: equal fingerprints
        /// (under one schema/views/query context) share cached chases.
        fingerprint: String,
        /// Ground tuples registered.
        tuples: u64,
    },
    /// Reply to [`Request::EvictInstance`].
    Evicted {
        /// The handle that was asked about.
        handle: String,
        /// Whether it was present (and is now gone).
        existed: bool,
    },
    /// Reply to [`Request::CacheStats`].
    CacheStatsSnapshot {
        /// Live cache entries (handles + derived indexes).
        entries: u64,
        /// Approximate bytes held.
        bytes: u64,
        /// Derived-index hits.
        hits: u64,
        /// Derived-index misses.
        misses: u64,
        /// Entries evicted (LRU pressure + explicit).
        evictions: u64,
        /// `put_instance` registrations served.
        puts: u64,
        /// Configured entry cap.
        max_entries: u64,
        /// Configured byte cap.
        max_bytes: u64,
        /// Disk-tier loads that returned a verified record. All
        /// `disk_*` fields are additive: old clients never see the keys
        /// and new clients decode absent keys as 0 (no-tier servers).
        disk_hits: u64,
        /// Disk-tier lookups that found nothing usable.
        disk_misses: u64,
        /// Records appended to the segment file.
        disk_spills: u64,
        /// Disk hits promoted back into the RAM LRU.
        disk_promotions: u64,
        /// Records dropped for bad framing/checksum/fingerprint.
        disk_corrupt_dropped: u64,
        /// Disk I/O failures demoted to clean misses.
        disk_io_errors: u64,
        /// Live segment bytes.
        disk_bytes: u64,
    },
    /// Reply to [`Request::Classify`]: the syntactic fragment of the
    /// pair and how determinacy requests over it are routed.
    Classified {
        /// Fragment tag: `"project-select"`, `"path"`, or `"general"`.
        fragment: String,
        /// Whether a terminating decision procedure exists for the
        /// fragment (`false` for `general` — determinacy there is
        /// undecidable and only the budgeted semi-decision runs).
        decidable: bool,
        /// One-line description of the route taken by `decide`-family
        /// requests in this fragment.
        route: String,
    },
    /// Verdict of the bounded containment check.
    Contained {
        /// `"no-counterexample"`, `"refuted"`, or `"too-large"`.
        verdict: String,
        /// Searched bound (for `no-counterexample`).
        bound: Option<u64>,
        /// Rendered witness instance (for `refuted`).
        witness: Option<String>,
    },
    /// Verdict of the finite determinacy procedure.
    FiniteOutcome {
        /// `"determined"`, `"not-determined"`, or `"open"`.
        verdict: String,
        /// The exact rewriting (for `determined`).
        rewriting: Option<String>,
        /// Largest domain exhaustively searched (for `open`).
        searched_up_to: Option<u64>,
        /// The witness pair (for `not-determined`).
        counterexample: Option<WireCounterexample>,
    },
    /// Verdict of one exhaustive semantic scan.
    SemanticOutcome {
        /// `"no-counterexample"`, `"not-determined"`, or `"too-large"`.
        verdict: String,
        /// The scanned bound (for `no-counterexample`).
        bound: Option<u64>,
        /// The witness pair (for `not-determined`).
        counterexample: Option<WireCounterexample>,
    },
    /// Metrics snapshot.
    StatsSnapshot {
        /// Flat server counters (kept for v1 compatibility).
        metrics: WireMetrics,
        /// Full registry snapshot: per-op counters, gauges, and latency
        /// histograms. Additive; old peers ignore it, old servers send an
        /// empty one.
        registry: RegistrySnapshot,
    },
    /// Reply to [`Request::Flight`]: the flight recorder's window.
    FlightSnapshot {
        /// One JSON digest per line, oldest first; empty when nothing
        /// has been recorded yet.
        jsonl: String,
    },
    /// Reply to [`Request::MetricsProm`]: the registry rendered as a
    /// Prometheus text-exposition document.
    MetricsText {
        /// The exposition document (`# HELP`/`# TYPE` + samples).
        text: String,
    },
    /// The server acknowledged [`Request::Shutdown`] and is draining.
    ShuttingDown,
    /// A resource limit tripped before the procedure finished.
    Exhausted {
        /// Which limit (`"deadline exceeded"`, `"canceled"`, …).
        reason: String,
        /// Human-readable partial progress.
        partial: String,
    },
    /// Admission control rejected the request; no work was done. Retry
    /// against a less loaded server (or later).
    Overloaded {
        /// Queue occupancy observed at rejection time.
        queue_depth: u64,
        /// The bounded queue's capacity.
        queue_capacity: u64,
    },
    /// The request was invalid.
    Error {
        /// Taxonomy bucket.
        kind: ErrorKind,
        /// Explanation.
        message: String,
    },
}

impl Outcome {
    /// The wire `status` field for this outcome.
    pub fn status(&self) -> &'static str {
        match self {
            Outcome::Exhausted { .. } => "exhausted",
            Outcome::Overloaded { .. } => "overloaded",
            Outcome::Error { .. } => "error",
            _ => "ok",
        }
    }
}

/// One reply on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Protocol version.
    pub version: u64,
    /// Correlation id echoed from the envelope (empty when the envelope
    /// was too malformed to recover one).
    pub id: String,
    /// How the request ended.
    pub outcome: Outcome,
    /// Budget accounting for the work performed server-side.
    pub work: WireStats,
    /// Per-request execution profile: engine counter deltas attributable
    /// to this request alone. Present only when the envelope asked for it.
    pub profile: Option<MetricsSnapshot>,
    /// Span events recorded while executing this request, as JSONL (one
    /// span per line). Present only when the envelope set `trace`.
    pub trace: Option<String>,
    /// Fragment attribution for determinacy-family requests: the honest
    /// routing note (`"project-select"`, `"path"`, or
    /// `"undecidable-in-general"`). Additive — absent for other ops and
    /// from pre-router servers, and absent keys decode to `None`.
    pub fragment: Option<String>,
    /// Per-request phase timeline. Additive like `fragment`: present on
    /// the wire only for profiled requests served through the event
    /// loop; absent keys decode to `None`.
    pub timeline: Option<Timeline>,
}

impl Response {
    /// Builds a current-version response.
    pub fn new(id: impl Into<String>, outcome: Outcome, work: WireStats) -> Response {
        Response {
            version: PROTOCOL_VERSION,
            id: id.into(),
            outcome,
            work,
            profile: None,
            trace: None,
            fragment: None,
            timeline: None,
        }
    }

    /// Attaches a per-request execution profile.
    pub fn with_profile(mut self, profile: MetricsSnapshot) -> Response {
        self.profile = Some(profile);
        self
    }

    /// Attaches a span trace (JSONL).
    pub fn with_trace(mut self, trace: impl Into<String>) -> Response {
        self.trace = Some(trace.into());
        self
    }

    /// Attaches the fragment-routing note (determinacy-family ops).
    pub fn with_fragment(mut self, fragment: impl Into<String>) -> Response {
        self.fragment = Some(fragment.into());
        self
    }

    /// Attaches the per-request phase timeline.
    pub fn with_timeline(mut self, timeline: Timeline) -> Response {
        self.timeline = Some(timeline);
        self
    }

    /// An `error` response with zero work.
    pub fn error(id: impl Into<String>, kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::new(
            id,
            Outcome::Error { kind, message: message.into() },
            WireStats::default(),
        )
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn num_field(obj: &mut Vec<(String, Value)>, key: &str, v: Option<u64>) {
    if let Some(v) = v {
        obj.push((key.to_owned(), Value::from(v)));
    }
}

fn str_field(obj: &mut Vec<(String, Value)>, key: &str, v: &Option<String>) {
    if let Some(v) = v {
        obj.push((key.to_owned(), Value::from(v.clone())));
    }
}

impl Envelope {
    /// Encodes the envelope as one compact JSON document (no newline).
    pub fn to_json(&self) -> Value {
        let mut req: Vec<(String, Value)> =
            vec![("op".to_owned(), Value::from(self.request.op()))];
        let mut s = |k: &str, v: &str| req.push((k.to_owned(), Value::from(v)));
        match &self.request {
            Request::Ping
            | Request::Stats
            | Request::Flight
            | Request::MetricsProm
            | Request::Shutdown
            | Request::DebugPanic => {}
            Request::Decide { schema, views, query }
            | Request::Rewrite { schema, views, query } => {
                s("schema", schema);
                s("views", views);
                s("query", query);
            }
            Request::Certain { schema, views, query, extent } => {
                s("schema", schema);
                s("views", views);
                s("query", query);
                s("extent", extent);
            }
            Request::CertainHandle { schema, views, query, handle } => {
                s("schema", schema);
                s("views", views);
                s("query", query);
                req.push((
                    "extent".to_owned(),
                    Value::object([("handle", Value::from(handle.clone()))]),
                ));
            }
            Request::PutInstance { schema, extent } => {
                s("schema", schema);
                s("extent", extent);
            }
            Request::EvictInstance { handle } => {
                s("handle", handle);
            }
            Request::CacheStats => {}
            Request::Classify { schema, views, query } => {
                s("schema", schema);
                s("views", views);
                s("query", query);
            }
            Request::Containment { schema, q1, q2, max_domain, space_limit } => {
                s("schema", schema);
                s("q1", q1);
                s("q2", q2);
                req.push(("max_domain".to_owned(), Value::from(*max_domain)));
                req.push(("space_limit".to_owned(), Value::from(*space_limit)));
            }
            Request::Finite { schema, views, query, max_domain, space_limit } => {
                s("schema", schema);
                s("views", views);
                s("query", query);
                req.push(("max_domain".to_owned(), Value::from(*max_domain)));
                req.push(("space_limit".to_owned(), Value::from(*space_limit)));
            }
            Request::Semantic { schema, views, query, domain, space_limit } => {
                s("schema", schema);
                s("views", views);
                s("query", query);
                req.push(("domain".to_owned(), Value::from(*domain)));
                req.push(("space_limit".to_owned(), Value::from(*space_limit)));
            }
        }
        let mut obj: Vec<(String, Value)> = vec![
            ("v".to_owned(), Value::from(self.version)),
            ("id".to_owned(), Value::from(self.id.clone())),
        ];
        num_field(&mut obj, "deadline_ms", self.limits.deadline_ms);
        num_field(&mut obj, "step_limit", self.limits.step_limit);
        num_field(&mut obj, "tuple_limit", self.limits.tuple_limit);
        if self.profile {
            obj.push(("profile".to_owned(), Value::from(true)));
        }
        if self.trace {
            obj.push(("trace".to_owned(), Value::from(true)));
        }
        if let Some(p) = self.parallelism {
            obj.push(("parallelism".to_owned(), Value::from(p)));
        }
        obj.push(("request".to_owned(), Value::Obj(req)));
        Value::Obj(obj)
    }

    /// Decodes an envelope from parsed JSON. `Err` carries the error
    /// kind and message (plus whatever correlation id was recoverable).
    pub fn from_json(v: &Value) -> Result<Envelope, (ErrorKind, String, String)> {
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_owned();
        let fail = |kind, msg: &str| Err((kind, msg.to_owned(), id.clone()));
        let Some(version) = v.get("v").and_then(Value::as_u64) else {
            return fail(ErrorKind::Protocol, "missing or non-numeric `v`");
        };
        if version != PROTOCOL_VERSION {
            return fail(
                ErrorKind::Version,
                &format!("unsupported protocol version {version} (expected {PROTOCOL_VERSION})"),
            );
        }
        let limits = Limits {
            deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
            step_limit: v.get("step_limit").and_then(Value::as_u64),
            tuple_limit: v.get("tuple_limit").and_then(Value::as_u64),
        };
        let profile = v.get("profile").and_then(Value::as_bool).unwrap_or(false);
        let trace = v.get("trace").and_then(Value::as_bool).unwrap_or(false);
        // Additive like `profile`/`trace`: absent means sequential.
        let parallelism = v.get("parallelism").and_then(Value::as_u64);
        let Some(req) = v.get("request") else {
            return fail(ErrorKind::Protocol, "missing `request`");
        };
        let Some(op) = req.get("op").and_then(Value::as_str) else {
            return fail(ErrorKind::Protocol, "missing `request.op`");
        };
        let text = |key: &str| -> Result<String, (ErrorKind, String, String)> {
            match req.get(key).and_then(Value::as_str) {
                Some(s) => Ok(s.to_owned()),
                None => Err((
                    ErrorKind::Protocol,
                    format!("op `{op}` needs string field `{key}`"),
                    id.clone(),
                )),
            }
        };
        let num = |key: &str, default: u64| -> Result<u64, (ErrorKind, String, String)> {
            match req.get(key) {
                None => Ok(default),
                Some(v) => v.as_u64().ok_or((
                    ErrorKind::Protocol,
                    format!("op `{op}` field `{key}` must be a non-negative integer"),
                    id.clone(),
                )),
            }
        };
        let request = match op {
            "ping" => Request::Ping,
            "stats" => Request::Stats,
            "flight" => Request::Flight,
            "metrics_prom" => Request::MetricsProm,
            "shutdown" => Request::Shutdown,
            "debug_panic" => Request::DebugPanic,
            "decide_unrestricted" => Request::Decide {
                schema: text("schema")?,
                views: text("views")?,
                query: text("query")?,
            },
            "rewrite" => Request::Rewrite {
                schema: text("schema")?,
                views: text("views")?,
                query: text("query")?,
            },
            "certain_sound" => {
                // The `extent` field is either inline facts (a string,
                // the v1 form) or a handle reference (an object).
                match req.get("extent").and_then(|e| e.get("handle")).and_then(Value::as_str)
                {
                    Some(handle) => Request::CertainHandle {
                        schema: text("schema")?,
                        views: text("views")?,
                        query: text("query")?,
                        handle: handle.to_owned(),
                    },
                    None => Request::Certain {
                        schema: text("schema")?,
                        views: text("views")?,
                        query: text("query")?,
                        extent: text("extent")?,
                    },
                }
            }
            "put_instance" => Request::PutInstance {
                schema: text("schema")?,
                extent: text("extent")?,
            },
            "evict_instance" => Request::EvictInstance { handle: text("handle")? },
            "cache_stats" => Request::CacheStats,
            "classify" => Request::Classify {
                schema: text("schema")?,
                views: text("views")?,
                query: text("query")?,
            },
            "containment" => Request::Containment {
                schema: text("schema")?,
                q1: text("q1")?,
                q2: text("q2")?,
                max_domain: num("max_domain", 3)?,
                space_limit: num("space_limit", 1 << 22)?,
            },
            "decide_finite" => Request::Finite {
                schema: text("schema")?,
                views: text("views")?,
                query: text("query")?,
                max_domain: num("max_domain", 3)?,
                space_limit: num("space_limit", 1 << 22)?,
            },
            "check_exhaustive" => Request::Semantic {
                schema: text("schema")?,
                views: text("views")?,
                query: text("query")?,
                domain: num("domain", 2)?,
                space_limit: num("space_limit", 1 << 22)?,
            },
            other => {
                return fail(ErrorKind::Unsupported, &format!("unknown op `{other}`"));
            }
        };
        Ok(Envelope { version, id, limits, profile, trace, parallelism, request })
    }

    /// Parses an envelope from one wire line.
    pub fn from_line(line: &str) -> Result<Envelope, (ErrorKind, String, String)> {
        let v = json::parse(line)
            .map_err(|e| (ErrorKind::Protocol, e.to_string(), String::new()))?;
        Envelope::from_json(&v)
    }
}

fn counterexample_to_json(c: &WireCounterexample) -> Value {
    Value::object([
        ("d1", Value::from(c.d1.clone())),
        ("d2", Value::from(c.d2.clone())),
        ("image", Value::from(c.image.clone())),
        ("q1", Value::from(c.q1.clone())),
        ("q2", Value::from(c.q2.clone())),
    ])
}

fn counterexample_from_json(v: &Value) -> Option<WireCounterexample> {
    let f = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_owned);
    Some(WireCounterexample {
        d1: f("d1")?,
        d2: f("d2")?,
        image: f("image")?,
        q1: f("q1")?,
        q2: f("q2")?,
    })
}

impl Response {
    /// Encodes the response as one compact JSON document (no newline).
    pub fn to_json(&self) -> Value {
        let mut result: Vec<(String, Value)> = Vec::new();
        let kind: &str = match &self.outcome {
            Outcome::Pong => "pong",
            Outcome::Decided { determined, rewriting } => {
                result.push(("determined".to_owned(), Value::from(*determined)));
                str_field(&mut result, "rewriting", rewriting);
                "decided"
            }
            Outcome::Rewritten { exists, rewriting } => {
                result.push(("exists".to_owned(), Value::from(*exists)));
                str_field(&mut result, "rewriting", rewriting);
                "rewritten"
            }
            Outcome::CertainAnswers { answers, count } => {
                result.push(("answers".to_owned(), Value::from(answers.clone())));
                result.push(("count".to_owned(), Value::from(*count)));
                "certain"
            }
            Outcome::InstancePut { handle, fingerprint, tuples } => {
                result.push(("handle".to_owned(), Value::from(handle.clone())));
                result.push(("fingerprint".to_owned(), Value::from(fingerprint.clone())));
                result.push(("tuples".to_owned(), Value::from(*tuples)));
                "put"
            }
            Outcome::Evicted { handle, existed } => {
                result.push(("handle".to_owned(), Value::from(handle.clone())));
                result.push(("existed".to_owned(), Value::from(*existed)));
                "evicted"
            }
            Outcome::CacheStatsSnapshot {
                entries,
                bytes,
                hits,
                misses,
                evictions,
                puts,
                max_entries,
                max_bytes,
                disk_hits,
                disk_misses,
                disk_spills,
                disk_promotions,
                disk_corrupt_dropped,
                disk_io_errors,
                disk_bytes,
            } => {
                for (k, v) in [
                    ("entries", *entries),
                    ("bytes", *bytes),
                    ("hits", *hits),
                    ("misses", *misses),
                    ("evictions", *evictions),
                    ("puts", *puts),
                    ("max_entries", *max_entries),
                    ("max_bytes", *max_bytes),
                    ("disk_hits", *disk_hits),
                    ("disk_misses", *disk_misses),
                    ("disk_spills", *disk_spills),
                    ("disk_promotions", *disk_promotions),
                    ("disk_corrupt_dropped", *disk_corrupt_dropped),
                    ("disk_io_errors", *disk_io_errors),
                    ("disk_bytes", *disk_bytes),
                ] {
                    result.push((k.to_owned(), Value::from(v)));
                }
                "cache-stats"
            }
            Outcome::Classified { fragment, decidable, route } => {
                result.push(("fragment".to_owned(), Value::from(fragment.clone())));
                result.push(("decidable".to_owned(), Value::from(*decidable)));
                result.push(("route".to_owned(), Value::from(route.clone())));
                "classified"
            }
            Outcome::Contained { verdict, bound, witness } => {
                result.push(("verdict".to_owned(), Value::from(verdict.clone())));
                num_field(&mut result, "bound", *bound);
                str_field(&mut result, "witness", witness);
                "containment"
            }
            Outcome::FiniteOutcome { verdict, rewriting, searched_up_to, counterexample } => {
                result.push(("verdict".to_owned(), Value::from(verdict.clone())));
                str_field(&mut result, "rewriting", rewriting);
                num_field(&mut result, "searched_up_to", *searched_up_to);
                if let Some(c) = counterexample {
                    result.push(("counterexample".to_owned(), counterexample_to_json(c)));
                }
                "finite"
            }
            Outcome::SemanticOutcome { verdict, bound, counterexample } => {
                result.push(("verdict".to_owned(), Value::from(verdict.clone())));
                num_field(&mut result, "bound", *bound);
                if let Some(c) = counterexample {
                    result.push(("counterexample".to_owned(), counterexample_to_json(c)));
                }
                "semantic"
            }
            Outcome::StatsSnapshot { metrics: m, registry } => {
                for (k, v) in [
                    ("accepted", m.accepted),
                    ("completed_ok", m.completed_ok),
                    ("exhausted", m.exhausted),
                    ("rejected", m.rejected),
                    ("errors", m.errors),
                    ("queue_depth", m.queue_depth),
                    ("max_queue_depth", m.max_queue_depth),
                    ("connections_open", m.connections_open),
                    ("connections_total", m.connections_total),
                    ("workers", m.workers),
                ] {
                    result.push((k.to_owned(), Value::from(v)));
                }
                result.push(("registry".to_owned(), registry.to_json()));
                "stats"
            }
            Outcome::FlightSnapshot { jsonl } => {
                result.push(("jsonl".to_owned(), Value::from(jsonl.clone())));
                "flight"
            }
            Outcome::MetricsText { text } => {
                result.push(("text".to_owned(), Value::from(text.clone())));
                "metrics-text"
            }
            Outcome::ShuttingDown => "shutting-down",
            Outcome::Exhausted { reason, partial } => {
                result.push(("reason".to_owned(), Value::from(reason.clone())));
                result.push(("partial".to_owned(), Value::from(partial.clone())));
                "exhausted"
            }
            Outcome::Overloaded { queue_depth, queue_capacity } => {
                result.push(("queue_depth".to_owned(), Value::from(*queue_depth)));
                result.push(("queue_capacity".to_owned(), Value::from(*queue_capacity)));
                "overloaded"
            }
            Outcome::Error { kind, message } => {
                result.push(("error_kind".to_owned(), Value::from(kind.as_str())));
                result.push(("message".to_owned(), Value::from(message.clone())));
                "error"
            }
        };
        result.insert(0, ("kind".to_owned(), Value::from(kind)));
        let mut work: Vec<(String, Value)> = vec![
            ("steps".to_owned(), Value::from(self.work.steps)),
            ("tuples".to_owned(), Value::from(self.work.tuples)),
            ("elapsed_ms".to_owned(), Value::from(self.work.elapsed_ms)),
            ("index_builds".to_owned(), Value::from(self.work.index_builds)),
            ("index_tuples".to_owned(), Value::from(self.work.index_tuples)),
        ];
        // Additive: only parallel requests carry the fan-out width.
        if self.work.threads_used != 0 {
            work.push(("threads_used".to_owned(), Value::from(self.work.threads_used)));
        }
        let mut obj: Vec<(String, Value)> = vec![
            ("v".to_owned(), Value::from(self.version)),
            ("id".to_owned(), Value::from(self.id.clone())),
            ("status".to_owned(), Value::from(self.outcome.status())),
            ("work".to_owned(), Value::Obj(work)),
        ];
        if let Some(p) = &self.profile {
            obj.push(("profile".to_owned(), p.to_json()));
        }
        if let Some(t) = &self.trace {
            obj.push(("trace".to_owned(), Value::from(t.clone())));
        }
        if let Some(f) = &self.fragment {
            obj.push(("fragment".to_owned(), Value::from(f.clone())));
        }
        if let Some(t) = &self.timeline {
            obj.push(("timeline".to_owned(), t.to_json()));
        }
        obj.push(("result".to_owned(), Value::Obj(result)));
        Value::Obj(obj)
    }

    /// Decodes a response from parsed JSON.
    pub fn from_json(v: &Value) -> Result<Response, String> {
        let version = v.get("v").and_then(Value::as_u64).ok_or("missing `v`")?;
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .ok_or("missing `id`")?
            .to_owned();
        let work = match v.get("work") {
            Some(w) => WireStats {
                steps: w.get("steps").and_then(Value::as_u64).unwrap_or(0),
                tuples: w.get("tuples").and_then(Value::as_u64).unwrap_or(0),
                elapsed_ms: w.get("elapsed_ms").and_then(Value::as_u64).unwrap_or(0),
                index_builds: w.get("index_builds").and_then(Value::as_u64).unwrap_or(0),
                index_tuples: w.get("index_tuples").and_then(Value::as_u64).unwrap_or(0),
                threads_used: w.get("threads_used").and_then(Value::as_u64).unwrap_or(0),
            },
            None => WireStats::default(),
        };
        let r = v.get("result").ok_or("missing `result`")?;
        let kind = r.get("kind").and_then(Value::as_str).ok_or("missing `result.kind`")?;
        let text = |k: &str| -> Result<String, String> {
            r.get(k)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("result kind `{kind}` needs string `{k}`"))
        };
        let opt_text = |k: &str| r.get(k).and_then(Value::as_str).map(str::to_owned);
        let outcome = match kind {
            "pong" => Outcome::Pong,
            "decided" => Outcome::Decided {
                determined: r
                    .get("determined")
                    .and_then(Value::as_bool)
                    .ok_or("missing `determined`")?,
                rewriting: opt_text("rewriting"),
            },
            "rewritten" => Outcome::Rewritten {
                exists: r.get("exists").and_then(Value::as_bool).ok_or("missing `exists`")?,
                rewriting: opt_text("rewriting"),
            },
            "certain" => Outcome::CertainAnswers {
                answers: text("answers")?,
                count: r.get("count").and_then(Value::as_u64).unwrap_or(0),
            },
            "put" => Outcome::InstancePut {
                handle: text("handle")?,
                fingerprint: text("fingerprint")?,
                tuples: r.get("tuples").and_then(Value::as_u64).unwrap_or(0),
            },
            "evicted" => Outcome::Evicted {
                handle: text("handle")?,
                existed: r.get("existed").and_then(Value::as_bool).unwrap_or(false),
            },
            "cache-stats" => {
                let g = |k: &str| r.get(k).and_then(Value::as_u64).unwrap_or(0);
                Outcome::CacheStatsSnapshot {
                    entries: g("entries"),
                    bytes: g("bytes"),
                    hits: g("hits"),
                    misses: g("misses"),
                    evictions: g("evictions"),
                    puts: g("puts"),
                    max_entries: g("max_entries"),
                    max_bytes: g("max_bytes"),
                    // Additive: absent on replies from servers without
                    // a disk tier (or older servers) decodes as 0.
                    disk_hits: g("disk_hits"),
                    disk_misses: g("disk_misses"),
                    disk_spills: g("disk_spills"),
                    disk_promotions: g("disk_promotions"),
                    disk_corrupt_dropped: g("disk_corrupt_dropped"),
                    disk_io_errors: g("disk_io_errors"),
                    disk_bytes: g("disk_bytes"),
                }
            }
            "classified" => Outcome::Classified {
                fragment: text("fragment")?,
                decidable: r.get("decidable").and_then(Value::as_bool).unwrap_or(false),
                route: text("route")?,
            },
            "containment" => Outcome::Contained {
                verdict: text("verdict")?,
                bound: r.get("bound").and_then(Value::as_u64),
                witness: opt_text("witness"),
            },
            "finite" => Outcome::FiniteOutcome {
                verdict: text("verdict")?,
                rewriting: opt_text("rewriting"),
                searched_up_to: r.get("searched_up_to").and_then(Value::as_u64),
                counterexample: r.get("counterexample").and_then(counterexample_from_json),
            },
            "semantic" => Outcome::SemanticOutcome {
                verdict: text("verdict")?,
                bound: r.get("bound").and_then(Value::as_u64),
                counterexample: r.get("counterexample").and_then(counterexample_from_json),
            },
            "stats" => {
                let g = |k: &str| r.get(k).and_then(Value::as_u64).unwrap_or(0);
                Outcome::StatsSnapshot {
                    metrics: WireMetrics {
                        accepted: g("accepted"),
                        completed_ok: g("completed_ok"),
                        exhausted: g("exhausted"),
                        rejected: g("rejected"),
                        errors: g("errors"),
                        queue_depth: g("queue_depth"),
                        max_queue_depth: g("max_queue_depth"),
                        connections_open: g("connections_open"),
                        connections_total: g("connections_total"),
                        workers: g("workers"),
                    },
                    registry: r
                        .get("registry")
                        .and_then(RegistrySnapshot::from_json)
                        .unwrap_or_default(),
                }
            }
            "flight" => Outcome::FlightSnapshot { jsonl: text("jsonl")? },
            "metrics-text" => Outcome::MetricsText { text: text("text")? },
            "shutting-down" => Outcome::ShuttingDown,
            "exhausted" => Outcome::Exhausted {
                reason: text("reason")?,
                partial: text("partial")?,
            },
            "overloaded" => Outcome::Overloaded {
                queue_depth: r.get("queue_depth").and_then(Value::as_u64).unwrap_or(0),
                queue_capacity: r.get("queue_capacity").and_then(Value::as_u64).unwrap_or(0),
            },
            "error" => Outcome::Error {
                kind: r
                    .get("error_kind")
                    .and_then(Value::as_str)
                    .and_then(ErrorKind::from_wire)
                    .unwrap_or(ErrorKind::Internal),
                message: text("message")?,
            },
            other => return Err(format!("unknown result kind `{other}`")),
        };
        let profile = v.get("profile").and_then(MetricsSnapshot::from_json);
        let trace = v.get("trace").and_then(Value::as_str).map(str::to_owned);
        // Additive: replies from pre-router servers carry no `fragment`
        // key, which decodes to `None`.
        let fragment = v.get("fragment").and_then(Value::as_str).map(str::to_owned);
        // Additive like `fragment`: pre-lifecycle servers send no
        // `timeline` key, which decodes to `None`.
        let timeline = v.get("timeline").and_then(Timeline::from_json);
        Ok(Response { version, id, outcome, work, profile, trace, fragment, timeline })
    }

    /// Parses a response from one wire line.
    pub fn from_line(line: &str) -> Result<Response, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        Response::from_json(&v)
    }
}

impl std::fmt::Display for Outcome {
    /// Human-oriented one-to-few-line rendering (used by `vqd request`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Pong => write!(f, "pong"),
            Outcome::Decided { determined: true, rewriting } => {
                write!(f, "V DETERMINES Q (unrestricted)")?;
                if let Some(r) = rewriting {
                    write!(f, "\nrewriting: {r}")?;
                }
                Ok(())
            }
            Outcome::Decided { determined: false, .. } => {
                write!(f, "V does NOT determine Q (unrestricted)")
            }
            Outcome::Rewritten { exists: true, rewriting } => {
                write!(f, "exact rewriting: {}", rewriting.as_deref().unwrap_or("<none>"))
            }
            Outcome::Rewritten { exists: false, .. } => {
                write!(f, "no exact rewriting exists (in any language)")
            }
            Outcome::CertainAnswers { answers, count } => {
                write!(f, "certain answers ({count}): {answers}")
            }
            Outcome::InstancePut { handle, fingerprint, tuples } => {
                write!(f, "put: handle {handle} ({tuples} tuples, fingerprint {fingerprint})")
            }
            Outcome::Evicted { handle, existed: true } => write!(f, "evicted {handle}"),
            Outcome::Evicted { handle, existed: false } => {
                write!(f, "handle {handle} was not cached")
            }
            Outcome::CacheStatsSnapshot {
                entries,
                bytes,
                hits,
                misses,
                evictions,
                puts,
                max_entries,
                max_bytes,
                disk_hits,
                disk_misses,
                disk_spills,
                disk_promotions,
                disk_corrupt_dropped,
                disk_io_errors,
                disk_bytes,
            } => {
                // The RAM section's wording is load-bearing: CI greps
                // for its substrings, so the disk section only appends.
                write!(
                    f,
                    "cache: {entries}/{max_entries} entries, {bytes}/{max_bytes} bytes | \
                     hits {hits} | misses {misses} | evictions {evictions} | puts {puts} | \
                     disk: {disk_bytes} bytes, disk_hits {disk_hits}, \
                     disk_misses {disk_misses}, disk_spills {disk_spills}, \
                     disk_promotions {disk_promotions}, \
                     disk_corrupt_dropped {disk_corrupt_dropped}, \
                     disk_io_errors {disk_io_errors}"
                )
            }
            Outcome::Classified { fragment, decidable, route } => {
                write!(
                    f,
                    "fragment: {fragment} ({}) — {route}",
                    if *decidable { "decidable" } else { "undecidable-in-general" }
                )
            }
            Outcome::Contained { verdict, bound, witness } => {
                write!(f, "containment: {verdict}")?;
                if let Some(b) = bound {
                    write!(f, " (searched domains ≤ {b})")?;
                }
                if let Some(w) = witness {
                    write!(f, "\nwitness:\n{w}")?;
                }
                Ok(())
            }
            Outcome::FiniteOutcome { verdict, rewriting, searched_up_to, counterexample } => {
                write!(f, "finite determinacy: {verdict}")?;
                if let Some(r) = rewriting {
                    write!(f, "\nrewriting: {r}")?;
                }
                if let Some(n) = searched_up_to {
                    write!(f, " (no counterexample with ≤ {n} values)")?;
                }
                if let Some(c) = counterexample {
                    write!(f, "\nD1:\n{}\nD2:\n{}", c.d1, c.d2)?;
                }
                Ok(())
            }
            Outcome::SemanticOutcome { verdict, bound, counterexample } => {
                write!(f, "semantic scan: {verdict}")?;
                if let Some(b) = bound {
                    write!(f, " (domain {b})")?;
                }
                if let Some(c) = counterexample {
                    write!(f, "\nD1:\n{}\nD2:\n{}", c.d1, c.d2)?;
                }
                Ok(())
            }
            Outcome::StatsSnapshot { metrics: m, registry } => {
                write!(
                    f,
                    "accepted {} | ok {} | exhausted {} | rejected {} | errors {} | \
                     queue {} (max {}) | conns {} open / {} total | {} workers",
                    m.accepted,
                    m.completed_ok,
                    m.exhausted,
                    m.rejected,
                    m.errors,
                    m.queue_depth,
                    m.max_queue_depth,
                    m.connections_open,
                    m.connections_total,
                    m.workers
                )?;
                let uptime = registry.gauge("server.uptime_ms");
                if uptime > 0 {
                    write!(f, "\nuptime: {:.1}s", uptime as f64 / 1000.0)?;
                }
                // One line per op that has served traffic, with latency
                // quantiles read off the histogram bucket bounds.
                for (name, h) in &registry.histograms {
                    let Some(op) = name
                        .strip_prefix("op.")
                        .and_then(|s| s.strip_suffix(".latency_ms"))
                    else {
                        continue;
                    };
                    if h.count == 0 {
                        continue;
                    }
                    let q = |q: f64| match h.quantile(q) {
                        u64::MAX => ">5000".to_owned(),
                        v => format!("≤{v}"),
                    };
                    write!(
                        f,
                        "\n{op}: {} requests, latency_ms p50 {} p95 {} p99 {}",
                        h.count,
                        q(0.5),
                        q(0.95),
                        q(0.99)
                    )?;
                }
                Ok(())
            }
            Outcome::FlightSnapshot { jsonl } if jsonl.is_empty() => {
                write!(f, "(flight recorder empty)")
            }
            Outcome::FlightSnapshot { jsonl } => write!(f, "{}", jsonl.trim_end()),
            Outcome::MetricsText { text } => write!(f, "{}", text.trim_end()),
            Outcome::ShuttingDown => write!(f, "server is draining and shutting down"),
            Outcome::Exhausted { reason, partial } => {
                write!(f, "exhausted ({reason}): {partial}")
            }
            Outcome::Overloaded { queue_depth, queue_capacity } => {
                write!(f, "overloaded: queue {queue_depth}/{queue_capacity} — retry later")
            }
            Outcome::Error { kind, message } => {
                write!(f, "error [{}]: {message}", kind.as_str())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_envelope(e: Envelope) {
        let line = e.to_json().to_string();
        assert!(!line.contains('\n'), "wire lines must be single-line");
        let back = Envelope::from_line(&line).expect("round trip");
        assert_eq!(back, e);
    }

    #[test]
    fn envelopes_round_trip() {
        round_trip_envelope(Envelope::new("1", Limits::none(), Request::Ping));
        round_trip_envelope(Envelope::new(
            "abc",
            Limits { deadline_ms: Some(250), step_limit: Some(10_000), tuple_limit: None },
            Request::Decide {
                schema: "E/2".into(),
                views: "V(x,y) :- E(x,y).".into(),
                query: "Q(x,z) :- E(x,y), E(y,z).".into(),
            },
        ));
        round_trip_envelope(Envelope::new(
            "c",
            Limits::none(),
            Request::Containment {
                schema: "E/2,P/1".into(),
                q1: "Q(x) :- P(x).".into(),
                q2: "Q(x) :- P(x), E(x,x).".into(),
                max_domain: 2,
                space_limit: 1 << 16,
            },
        ));
        round_trip_envelope(Envelope::new(
            "f",
            Limits::none(),
            Request::Finite {
                schema: "E/2".into(),
                views: "V(x,y) :- E(x,z), E(z,y).".into(),
                query: "Q(x,y) :- E(x,y).".into(),
                max_domain: 2,
                space_limit: 4096,
            },
        ));
        round_trip_envelope(Envelope::new("s", Limits::none(), Request::Stats));
        round_trip_envelope(Envelope::new("x", Limits::none(), Request::Shutdown));
        round_trip_envelope(Envelope::new("p", Limits::none(), Request::Ping).with_profile(true));
        round_trip_envelope(Envelope::new("t", Limits::none(), Request::Ping).with_trace(true));
        round_trip_envelope(Envelope::new(
            "h",
            Limits::none(),
            Request::CertainHandle {
                schema: "E/2".into(),
                views: "V(x,y) :- E(x,y).".into(),
                query: "Q(x,z) :- E(x,y), E(y,z).".into(),
                handle: "h42".into(),
            },
        ));
        round_trip_envelope(Envelope::new(
            "put",
            Limits::none(),
            Request::PutInstance { schema: "V/2".into(), extent: "V(a,b).".into() },
        ));
        round_trip_envelope(Envelope::new(
            "ev",
            Limits::none(),
            Request::EvictInstance { handle: "h42".into() },
        ));
        round_trip_envelope(Envelope::new("cs", Limits::none(), Request::CacheStats));
        round_trip_envelope(Envelope::new(
            "cl",
            Limits::none(),
            Request::Classify {
                schema: "E/2".into(),
                views: "V(x,y) :- E(x,y).".into(),
                query: "Q(x) :- E(x,x).".into(),
            },
        ));
    }

    #[test]
    fn classified_outcome_round_trips_with_fragment_note() {
        let r = Response::new(
            "cl",
            Outcome::Classified {
                fragment: "project-select".into(),
                decidable: true,
                route: "direct polynomial decision procedure".into(),
            },
            WireStats::default(),
        )
        .with_fragment("project-select");
        let line = r.to_json().to_string();
        assert!(!line.contains('\n'));
        let back = Response::from_line(&line).expect("round trip");
        assert_eq!(back, r);
        assert_eq!(back.fragment.as_deref(), Some("project-select"));
    }

    #[test]
    fn absent_fragment_field_decodes_as_none() {
        // A pre-router reply has no `fragment` key: the new field is
        // additive, exactly like `profile`/`trace`/`disk_*`.
        let line = r#"{"v":1,"id":"x","status":"ok",
            "work":{"steps":0,"tuples":0,"elapsed_ms":0,"index_builds":0,"index_tuples":0},
            "result":{"kind":"pong"}}"#
            .replace('\n', "");
        let back = Response::from_line(&line).unwrap();
        assert_eq!(back.fragment, None);
    }

    #[test]
    fn fragment_field_is_additive_on_otherwise_identical_replies() {
        // The same reply with and without attribution differs ONLY in
        // the `fragment` key: stripping it restores the v1 bytes.
        let base = Response::new(
            "d",
            Outcome::Decided { determined: true, rewriting: Some("R(x) :- V(x).".into()) },
            WireStats::default(),
        );
        let v1 = base.clone().to_json().to_string();
        let v2 = base.with_fragment("project-select").to_json().to_string();
        assert_ne!(v1, v2);
        assert_eq!(v2.replace(r#","fragment":"project-select""#, ""), v1);
    }

    #[test]
    fn absent_profile_flag_decodes_as_false() {
        let e = Envelope::from_line(r#"{"v":1,"id":"x","request":{"op":"ping"}}"#).unwrap();
        assert!(!e.profile);
    }

    #[test]
    fn absent_trace_flag_decodes_as_false() {
        let e = Envelope::from_line(r#"{"v":1,"id":"x","request":{"op":"ping"}}"#).unwrap();
        assert!(!e.trace);
    }

    #[test]
    fn absent_parallelism_decodes_as_none_and_round_trips_when_set() {
        // v1 envelope: no `parallelism` key anywhere.
        let e = Envelope::from_line(r#"{"v":1,"id":"x","request":{"op":"ping"}}"#).unwrap();
        assert_eq!(e.parallelism, None);
        let base = Envelope::new("p", Limits::none(), Request::Ping);
        assert!(!base.to_json().to_string().contains("parallelism"));
        round_trip_envelope(base.with_parallelism(4));
    }

    #[test]
    fn threads_used_is_additive_on_the_work_envelope() {
        // Sequential replies encode no `threads_used`; absent decodes 0.
        let seq = Response::new("s", Outcome::Pong, WireStats::default());
        assert!(!seq.to_json().to_string().contains("threads_used"));
        let line = r#"{"v":1,"id":"x","status":"ok",
            "work":{"steps":5,"tuples":0,"elapsed_ms":1,"index_builds":0,"index_tuples":0},
            "result":{"kind":"pong"}}"#
            .replace('\n', "");
        let back = Response::from_line(&line).unwrap();
        assert_eq!(back.work.threads_used, 0);
        // A parallel reply carries it and round-trips.
        let work = WireStats { steps: 5, threads_used: 8, ..WireStats::default() };
        let par = Response::new("p", Outcome::Pong, work);
        assert!(par.to_json().to_string().contains(r#""threads_used":8"#));
        round_trip_response(par);
    }

    #[test]
    fn certain_extent_forms_share_one_op() {
        // Inline string extent: the v1 form.
        let inline = Envelope::from_line(
            r#"{"v":1,"id":"a","request":{"op":"certain_sound","schema":"E/2",
                "views":"V(x,y) :- E(x,y).","query":"Q(x) :- E(x,y).","extent":"V(a,b)."}}"#,
        )
        .unwrap();
        assert!(matches!(inline.request, Request::Certain { .. }));
        // Handle-object extent: the session form, same wire op.
        let by_handle = Envelope::from_line(
            r#"{"v":1,"id":"b","request":{"op":"certain_sound","schema":"E/2",
                "views":"V(x,y) :- E(x,y).","query":"Q(x) :- E(x,y).",
                "extent":{"handle":"h7"}}}"#,
        )
        .unwrap();
        assert_eq!(
            by_handle.request,
            Request::CertainHandle {
                schema: "E/2".into(),
                views: "V(x,y) :- E(x,y).".into(),
                query: "Q(x) :- E(x,y).".into(),
                handle: "h7".into(),
            }
        );
        assert_eq!(inline.request.op(), by_handle.request.op());
    }

    fn round_trip_response(r: Response) {
        let line = r.to_json().to_string();
        assert!(!line.contains('\n'));
        let back = Response::from_line(&line).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn responses_round_trip() {
        let work = WireStats {
            steps: 12,
            tuples: 3,
            elapsed_ms: 40,
            index_builds: 2,
            index_tuples: 17,
            threads_used: 4,
        };
        round_trip_response(Response::new("1", Outcome::Pong, WireStats::default()));
        round_trip_response(Response::new(
            "2",
            Outcome::Decided { determined: true, rewriting: Some("R(x,y) :- V(x,y).".into()) },
            work,
        ));
        round_trip_response(Response::new(
            "3",
            Outcome::Exhausted { reason: "deadline exceeded".into(), partial: "scanned 10".into() },
            work,
        ));
        round_trip_response(Response::new(
            "4",
            Outcome::Overloaded { queue_depth: 64, queue_capacity: 64 },
            WireStats::default(),
        ));
        round_trip_response(Response::new(
            "5",
            Outcome::FiniteOutcome {
                verdict: "not-determined".into(),
                rewriting: None,
                searched_up_to: None,
                counterexample: Some(WireCounterexample {
                    d1: "E(a,b).".into(),
                    d2: "E(a,a).".into(),
                    image: "{}".into(),
                    q1: "{}".into(),
                    q2: "{(a)}".into(),
                }),
            },
            work,
        ));
        round_trip_response(Response::error("6", ErrorKind::Parse, "bad query"));
        round_trip_response(Response::error("6b", ErrorKind::UnknownHandle, "no such handle"));
        round_trip_response(Response::new(
            "p1",
            Outcome::InstancePut {
                handle: "h3".into(),
                fingerprint: "ab12".into(),
                tuples: 7,
            },
            WireStats::default(),
        ));
        round_trip_response(Response::new(
            "e1",
            Outcome::Evicted { handle: "h3".into(), existed: true },
            WireStats::default(),
        ));
        round_trip_response(Response::new(
            "c1",
            Outcome::CacheStatsSnapshot {
                entries: 2,
                bytes: 4096,
                hits: 5,
                misses: 1,
                evictions: 0,
                puts: 2,
                max_entries: 128,
                max_bytes: 64 << 20,
                disk_hits: 3,
                disk_misses: 2,
                disk_spills: 4,
                disk_promotions: 3,
                disk_corrupt_dropped: 1,
                disk_io_errors: 1,
                disk_bytes: 8192,
            },
            WireStats::default(),
        ));
        round_trip_response(
            Response::new("t1", Outcome::Pong, work)
                .with_trace("{\"name\":\"chase.round\"}"),
        );
        let registry_sample = {
            let reg = vqd_obs::Registry::new();
            reg.counter("op.ping.requests").add(3);
            reg.gauge("server.uptime_ms").set(1234);
            reg.histogram("op.ping.latency_ms", &vqd_obs::LATENCY_BOUNDS_MS)
                .observe(7);
            reg.snapshot()
        };
        round_trip_response(Response::new(
            "7",
            Outcome::StatsSnapshot {
                metrics: WireMetrics {
                    accepted: 10,
                    completed_ok: 8,
                    exhausted: 1,
                    rejected: 1,
                    errors: 0,
                    queue_depth: 0,
                    max_queue_depth: 4,
                    connections_open: 2,
                    connections_total: 5,
                    workers: 4,
                },
                registry: registry_sample,
            },
            WireStats::default(),
        ));
        let mut profiled = MetricsSnapshot::default();
        profiled.set(vqd_obs::Metric::ChaseRounds, 4);
        profiled.set(vqd_obs::Metric::HomCandidatesTried, 19);
        round_trip_response(
            Response::new("8", Outcome::Pong, work).with_profile(profiled),
        );
    }

    #[test]
    fn version_mismatch_is_a_version_error() {
        let (kind, _, _) =
            Envelope::from_line(r#"{"v":99,"id":"x","request":{"op":"ping"}}"#).unwrap_err();
        assert_eq!(kind, ErrorKind::Version);
    }

    #[test]
    fn unknown_op_is_unsupported_and_keeps_the_id() {
        let (kind, _, id) =
            Envelope::from_line(r#"{"v":1,"id":"req-7","request":{"op":"frobnicate"}}"#)
                .unwrap_err();
        assert_eq!(kind, ErrorKind::Unsupported);
        assert_eq!(id, "req-7");
    }

    #[test]
    fn malformed_json_is_a_protocol_error() {
        let (kind, msg, id) = Envelope::from_line("{not json").unwrap_err();
        assert_eq!(kind, ErrorKind::Protocol);
        assert!(!msg.is_empty());
        assert!(id.is_empty());
    }

    #[test]
    fn limits_build_matching_budgets() {
        let l = Limits { deadline_ms: Some(5), step_limit: Some(9), tuple_limit: Some(2) };
        let b = l.to_budget();
        assert_eq!(b.remaining_steps(), Some(9));
        assert_eq!(b.remaining_tuples(), Some(2));
        assert!(b.remaining_time().is_some());
        assert!(!Limits::none().to_budget().is_limited());
    }

    #[test]
    fn lifecycle_ops_round_trip() {
        round_trip_envelope(Envelope::new("fl", Limits::none(), Request::Flight));
        round_trip_envelope(Envelope::new("mp", Limits::none(), Request::MetricsProm));
        let flight = Response::new(
            "fl",
            Outcome::FlightSnapshot { jsonl: "{\"seq\":1,\"op\":\"ping\"}\n".into() },
            WireStats::default(),
        );
        let back = Response::from_line(&flight.to_json().to_string()).expect("flight");
        assert_eq!(back, flight);
        let prom = Response::new(
            "mp",
            Outcome::MetricsText { text: "# TYPE server_e2e_ms histogram\n".into() },
            WireStats::default(),
        );
        let back = Response::from_line(&prom.to_json().to_string()).expect("metrics");
        assert_eq!(back, prom);
    }

    #[test]
    fn timeline_round_trips_and_sums() {
        let tl = Timeline {
            frame_us: 10,
            queue_us: 250,
            exec_us: 4000,
            reorder_us: 30,
            write_us: 0,
            framed: None,
            finished: None,
        };
        assert_eq!(tl.total_us(), 4290);
        let r = Response::new("t", Outcome::Pong, WireStats::default()).with_timeline(tl);
        let line = r.to_json().to_string();
        assert!(!line.contains('\n'));
        let back = Response::from_line(&line).expect("round trip");
        assert_eq!(back, r);
        assert_eq!(back.timeline, Some(tl));
        // In-process instants never reach the wire: a timeline carrying
        // them encodes identically to one without.
        let stamped = Timeline {
            framed: Some(std::time::Instant::now()),
            finished: Some(std::time::Instant::now()),
            ..tl
        };
        assert_eq!(stamped.to_json().to_string(), tl.to_json().to_string());
    }

    #[test]
    fn absent_timeline_field_decodes_as_none() {
        // v1 replies have no `timeline` key: the section is additive,
        // exactly like `fragment`.
        let line = r#"{"v":1,"id":"x","status":"ok",
            "work":{"steps":0,"tuples":0,"elapsed_ms":0,"index_builds":0,"index_tuples":0},
            "result":{"kind":"pong"}}"#
            .replace('\n', "");
        let back = Response::from_line(&line).unwrap();
        assert_eq!(back.timeline, None);
    }
}
