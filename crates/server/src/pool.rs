//! The worker pool: a bounded request queue with admission control.
//!
//! Requests flow `connection thread → bounded queue → worker thread`.
//! The queue is a [`std::sync::mpsc::sync_channel`] of fixed depth:
//! [`Pool::submit`] uses `try_send`, so a full queue rejects *instantly*
//! — the caller turns that into an [`Outcome::Overloaded`] wire response
//! and the server never buffers unboundedly (hostile load degrades to
//! fast rejections, not memory growth and compounding latency).
//!
//! Workers wrap the engine in `catch_unwind`: a panicking request is
//! answered with an `internal` error and the worker lives on. On
//! shutdown the pool is dropped *after* the server trips its
//! [`CancelToken`](vqd_budget::CancelToken); queued jobs still execute,
//! but their budgets observe the token and come back `exhausted
//! (canceled)` with whatever partial work was done — a drain, not a
//! drop.

// A rejected submission hands the `Job` back so the caller can still
// reply on its channel with the envelope's id; the large Err variant is
// the point, not an accident, so the lint is off for this module.
#![allow(clippy::result_large_err)]

use crate::engine::{self, EngineCtx};
use crate::metrics::Metrics;
use crate::proto::{Envelope, ErrorKind, Outcome, Request, Response, Timeline, WireStats};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use vqd_budget::Budget;
use vqd_exec::ExecCtx;
use vqd_obs::{FlightDigest, Metric, MetricsSnapshot};

/// Lifecycle stamps taken by the owning event loop before a job reaches
/// the queue; the worker adds its own start/end stamps to complete the
/// pre-release part of the request's [`Timeline`].
#[derive(Clone, Copy, Debug)]
pub struct PhaseStamps {
    /// The request's full line was framed out of the read buffer.
    pub framed: Instant,
    /// The decoded job was accepted by the bounded queue.
    pub enqueued: Instant,
}

impl PhaseStamps {
    /// Stamps both points "now" — for direct submitters (tests, blocking
    /// channel callers) that have no framing stage.
    pub fn now() -> PhaseStamps {
        let now = Instant::now();
        PhaseStamps { framed: now, enqueued: now }
    }
}

/// One admitted request: the envelope, its clamped budget, and where to
/// send the reply.
pub struct Job {
    /// The decoded request envelope.
    pub envelope: Envelope,
    /// Budget already clamped against server caps (its cancel token is
    /// the server's shutdown token).
    pub budget: Budget,
    /// Reply destination: a blocking caller's channel, or a completion
    /// callback routing the response back to an I/O event loop.
    pub reply: ReplyTo,
    /// Frame/enqueue stamps for the phase timeline. `None` for direct
    /// submitters: their replies then carry no timeline and feed no
    /// phase histograms, which keeps loop-served attribution exact.
    pub stamps: Option<PhaseStamps>,
}

/// Where a finished job's response goes. Exactly one response is
/// delivered per job, whichever variant carries it.
pub enum ReplyTo {
    /// A paired `mpsc` receiver (blocking callers, tests). A dead
    /// receiver is fine: the response is dropped.
    Channel(std::sync::mpsc::Sender<Response>),
    /// A completion callback, invoked on the worker thread. The server's
    /// event loops use this to get `(connection, sequence)`-tagged
    /// completions without a thread parked per in-flight request.
    Callback(Box<dyn FnOnce(Response) + Send>),
}

impl ReplyTo {
    /// Delivers the response (consuming the destination).
    pub fn send(self, response: Response) {
        match self {
            // The connection may have hung up; a dead channel is fine.
            ReplyTo::Channel(tx) => drop(tx.send(response)),
            ReplyTo::Callback(f) => f(response),
        }
    }
}

impl From<std::sync::mpsc::Sender<Response>> for ReplyTo {
    fn from(tx: std::sync::mpsc::Sender<Response>) -> ReplyTo {
        ReplyTo::Channel(tx)
    }
}

/// Why a submission failed.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; reply `overloaded` and drop the job.
    Full,
    /// The pool has shut down.
    Closed,
}

/// A fixed-size worker pool over a bounded queue.
pub struct Pool {
    tx: SyncSender<Job>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
    metrics: Arc<Metrics>,
}

impl Pool {
    /// Spawns `workers` threads serving a queue of depth `queue_depth`.
    pub fn new(workers: usize, queue_depth: usize, ctx: EngineCtx) -> Pool {
        let workers = workers.max(1);
        let queue_depth = queue_depth.max(1);
        let (tx, rx) = sync_channel::<Job>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let metrics = ctx.metrics.clone();
        metrics.workers.store(workers as u64, Ordering::Relaxed);
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let ctx = ctx.clone();
                std::thread::Builder::new()
                    .name(format!("vqd-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &ctx))
                    .unwrap_or_else(|e| panic!("spawning worker {i}: {e}"))
            })
            .collect();
        Pool { tx, workers: handles, queue_capacity: queue_depth, metrics }
    }

    /// The bounded queue's capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// A cloneable submission handle for connection threads.
    pub fn queue_handle(&self) -> QueueHandle {
        QueueHandle {
            tx: self.tx.clone(),
            capacity: self.queue_capacity,
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// Admission control: enqueue without blocking, or reject.
    pub fn submit(&self, job: Job) -> Result<(), (Job, SubmitError)> {
        try_submit(&self.tx, &self.metrics, job)
    }

    /// Drops the queue's sender and joins every worker. Queued jobs are
    /// drained (executed) first; call this only after tripping the
    /// server's shutdown token so the drain is fast.
    pub fn shutdown(self) {
        drop(self.tx);
        for h in self.workers {
            // A worker that panicked already answered its job with an
            // `internal` error via catch_unwind; a join error here means
            // the panic was outside the guarded region — propagate.
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
    }
}

/// A cloneable submission handle onto the pool's bounded queue. Each
/// clone holds a sender; workers drain and exit only once the [`Pool`]
/// *and* every handle are dropped, so connection threads must release
/// their handles (by exiting on the shutdown token) before
/// [`Pool::shutdown`] is called.
#[derive(Clone)]
pub struct QueueHandle {
    tx: SyncSender<Job>,
    capacity: usize,
    metrics: Arc<Metrics>,
}

impl QueueHandle {
    /// The bounded queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admission control: enqueue without blocking, or reject.
    pub fn submit(&self, job: Job) -> Result<(), (Job, SubmitError)> {
        try_submit(&self.tx, &self.metrics, job)
    }
}

fn try_submit(
    tx: &SyncSender<Job>,
    metrics: &Metrics,
    job: Job,
) -> Result<(), (Job, SubmitError)> {
    // Count the admission *before* sending: once the job is in the
    // channel a worker may dequeue (and decrement) it immediately, so
    // counting afterwards could drive the depth counter below zero.
    let depth = metrics.enqueued();
    match tx.try_send(job) {
        Ok(()) => {
            metrics.admitted(depth);
            Ok(())
        }
        Err(TrySendError::Full(job)) => {
            metrics.unenqueued();
            Err((job, SubmitError::Full))
        }
        Err(TrySendError::Disconnected(job)) => {
            metrics.unenqueued();
            Err((job, SubmitError::Closed))
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, ctx: &EngineCtx) {
    loop {
        let job = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(_) => return, // a sibling panicked holding the lock
            };
            match guard.recv() {
                Ok(job) => job,
                Err(_) => return, // all senders gone: shutdown
            }
        };
        ctx.metrics.dequeued();
        run_job(job, ctx);
    }
}

/// Executes one job and sends exactly one reply.
fn run_job(job: Job, ctx: &EngineCtx) {
    let Job { envelope, budget, reply, stamps } = job;
    let op = envelope.request.op();
    // Workers serve one job at a time, so diffing the thread-local engine
    // counters around `execute` attributes exactly this request's work —
    // a snapshot *delta*, never the absolute (still-growing) totals.
    if envelope.trace {
        // Scope tracing to this job via the worker's thread-local
        // override, and discard whatever a previous (untraced or
        // crashed) job left in this thread's span ring.
        vqd_obs::set_thread_tracing(true);
        let _ = vqd_obs::drain_spans();
        let _ = vqd_obs::dropped_spans();
    }
    let before = MetricsSnapshot::capture();
    let started = Instant::now();
    let mut panicked = false;
    // The envelope's requested fan-out, clamped by the engine pool: a
    // request can never commandeer more shards than the server was
    // started with, and an absent field stays exactly sequential.
    let parallelism = (envelope.parallelism.unwrap_or(1) as usize).min(ctx.exec.threads());
    let exec = ExecCtx::on_pool(budget.clone(), parallelism, Arc::clone(&ctx.exec));
    let (outcome, fragment) = catch_unwind(AssertUnwindSafe(|| {
        engine::execute_attributed_ctx(&envelope.request, &exec, ctx)
    }))
    .unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "engine panicked".to_owned());
        // Containment boundary: the panic is demoted to a typed reply,
        // the worker thread survives, and the counter makes the event
        // visible to `stats`/BENCH instead of silently absorbed.
        ctx.registry.counter("server.worker_panics").inc();
        panicked = true;
        (Outcome::Error { kind: ErrorKind::Internal, message: msg }, None)
    });
    let finished = Instant::now();
    let elapsed_ms = finished.duration_since(started).as_millis() as u64;
    let profile = MetricsSnapshot::capture().diff(&before);
    match &outcome {
        Outcome::Error { .. } => ctx.metrics.errors.fetch_add(1, Ordering::Relaxed),
        Outcome::Exhausted { .. } => ctx.metrics.exhausted.fetch_add(1, Ordering::Relaxed),
        _ => ctx.metrics.completed_ok.fetch_add(1, Ordering::Relaxed),
    };
    record_request(ctx, op, &outcome, elapsed_ms, &profile);
    let mut work = WireStats::from(budget.work_done());
    work.index_builds = profile.get(Metric::IndexBuilds);
    work.index_tuples = profile.get(Metric::IndexDeltaTuples);
    work.threads_used = exec.threads_used();
    // The worker fills the pre-release part of the timeline; the owning
    // event loop stamps reorder-release (and write-drain, off-reply) on
    // the way out.
    let timeline = stamps.map(|s| Timeline {
        frame_us: s.enqueued.duration_since(s.framed).as_micros() as u64,
        queue_us: started.duration_since(s.enqueued).as_micros() as u64,
        exec_us: finished.duration_since(started).as_micros() as u64,
        reorder_us: 0,
        write_us: 0,
        framed: Some(s.framed),
        finished: Some(finished),
    });
    // Black box first, reply second: the digest must be in the ring
    // before any dump triggered by this request fires.
    let tl = timeline.unwrap_or_default();
    vqd_obs::flight_record(FlightDigest {
        seq: 0, // assigned by the recorder
        id: envelope.id.clone(),
        op: op.to_owned(),
        outcome: if panicked { "panic".to_owned() } else { outcome.status().to_owned() },
        fragment: fragment.map(str::to_owned),
        cache_hit: match &envelope.request {
            // A handle request that built no index was served entirely
            // from the cross-request cache; other ops never consult it.
            Request::CertainHandle { .. } => Some(work.index_builds == 0),
            _ => None,
        },
        frame_us: tl.frame_us,
        queue_us: tl.queue_us,
        exec_us: tl.exec_us,
        steps: work.steps,
        tuples: work.tuples,
        index_builds: work.index_builds,
    });
    if panicked {
        vqd_obs::flight_dump("worker_panic");
    } else if matches!(outcome, Outcome::Exhausted { .. }) {
        // Exhaustion is routine under hostile load; rate-limit so the
        // black box never becomes a stderr firehose.
        vqd_obs::flight_dump_throttled("exhausted");
    }
    let mut response = Response::new(envelope.id.clone(), outcome, work);
    if let Some(fragment) = fragment {
        response = response.with_fragment(fragment);
    }
    if envelope.profile {
        response = response.with_profile(profile);
    }
    if envelope.trace {
        vqd_obs::set_thread_tracing(false);
        let events = vqd_obs::drain_spans();
        response = response.with_trace(vqd_obs::spans_to_jsonl(&events));
    }
    if let Some(tl) = timeline {
        response = response.with_timeline(tl);
    }
    // Span-ring health: fold this thread's overwrite count into a
    // server-wide counter and publish its current (un-drained)
    // occupancy, so `stats` can tell a truncated trace from a short one.
    // `add(0)` still creates the series, so `stats` always carries it.
    ctx.registry.counter("trace.spans_dropped").add(vqd_obs::dropped_spans());
    let thread = std::thread::current();
    ctx.registry
        .gauge(&format!("trace.ring_occupancy.{}", thread.name().unwrap_or("worker")))
        .set(vqd_obs::ring_occupancy() as u64);
    reply.send(response);
}

/// Folds one finished request into the server-wide registry: per-op
/// request/error/exhausted counters, a latency histogram, and the
/// request's engine-counter deltas under `engine.*`.
fn record_request(
    ctx: &EngineCtx,
    op: &str,
    outcome: &Outcome,
    elapsed_ms: u64,
    profile: &MetricsSnapshot,
) {
    let reg = &ctx.registry;
    reg.counter(&format!("op.{op}.requests")).inc();
    match outcome {
        Outcome::Error { .. } => reg.counter(&format!("op.{op}.errors")).inc(),
        Outcome::Exhausted { .. } => reg.counter(&format!("op.{op}.exhausted")).inc(),
        _ => {}
    }
    reg.histogram(&format!("op.{op}.latency_ms"), &vqd_obs::LATENCY_BOUNDS_MS)
        .observe(elapsed_ms);
    for m in Metric::ALL {
        let d = profile.get(m);
        if d != 0 {
            reg.counter(&format!("engine.{}", m.name())).add(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Limits, Request};
    use std::sync::mpsc::channel;
    use vqd_budget::CancelToken;

    fn ctx() -> EngineCtx {
        EngineCtx::new(CancelToken::new())
    }

    fn ping_job(reply: std::sync::mpsc::Sender<Response>) -> Job {
        Job {
            envelope: Envelope::new("t", Limits::none(), Request::Ping),
            budget: Budget::unlimited(),
            reply: reply.into(),
            stamps: None,
        }
    }

    #[test]
    fn pool_answers_submitted_jobs() {
        let ctx = ctx();
        let pool = Pool::new(2, 4, ctx.clone());
        let (tx, rx) = channel();
        for _ in 0..8 {
            let mut job = ping_job(tx.clone());
            loop {
                match pool.submit(job) {
                    Ok(()) => break,
                    Err((j, SubmitError::Full)) => {
                        job = j;
                        std::thread::yield_now();
                    }
                    Err((_, SubmitError::Closed)) => panic!("pool closed early"),
                }
            }
        }
        for _ in 0..8 {
            let r = rx.recv().expect("reply");
            assert_eq!(r.outcome, Outcome::Pong);
        }
        pool.shutdown();
        assert_eq!(ctx.metrics.snapshot().completed_ok, 8);
        assert_eq!(ctx.metrics.snapshot().queue_depth, 0);
    }

    #[test]
    fn full_queue_rejects_instantly() {
        let ctx = ctx();
        // One worker wedged on a slow job + queue depth 1 ⇒ the third
        // submission must be rejected.
        let pool = Pool::new(1, 1, ctx.clone());
        let (tx, rx) = channel();
        let slow = Job {
            envelope: Envelope::new(
                "slow",
                Limits::none(),
                Request::Semantic {
                    schema: "E/2".into(),
                    views: "V(x,y) :- E(x,y).".into(),
                    query: "Q(x,z) :- E(x,y), E(y,z).".into(),
                    domain: 3,
                    space_limit: 1 << 20,
                },
            ),
            budget: Budget::unlimited().with_deadline(std::time::Duration::from_millis(400)),
            reply: tx.clone().into(),
            stamps: None,
        };
        pool.submit(slow).map_err(|_| ()).expect("first admit");
        // Give the worker a moment to pick the slow job up, then fill
        // the queue and overflow it.
        let mut rejected = 0;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while rejected == 0 {
            assert!(std::time::Instant::now() < deadline, "no rejection observed");
            match pool.submit(ping_job(tx.clone())) {
                Ok(()) => {}
                Err((_, SubmitError::Full)) => rejected += 1,
                Err((_, SubmitError::Closed)) => panic!("pool closed early"),
            }
        }
        assert!(rejected > 0);
        drop(tx);
        while rx.recv().is_ok() {}
        pool.shutdown();
    }

    #[test]
    fn panicking_request_degrades_to_internal_error() {
        let ctx = ctx();
        let (tx, rx) = channel();
        // No public request panics by design; drive run_job directly
        // with a poisoned closure stand-in: a request whose schema is
        // fine but whose execution we sabotage via fault injection is
        // still structured, so instead assert the catch_unwind path by
        // panicking inside the engine through an impossible invariant:
        // containment with mismatched arities is pre-checked, so use a
        // direct panic probe.
        let job = Job {
            envelope: Envelope::new("p", Limits::none(), Request::Ping),
            budget: Budget::unlimited(),
            reply: tx.into(),
            stamps: Some(PhaseStamps::now()),
        };
        // run_job must always reply exactly once.
        run_job(job, &ctx);
        assert_eq!(rx.recv().expect("reply").outcome, Outcome::Pong);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn requested_parallelism_is_clamped_and_reported() {
        let ctx = ctx().with_engine_pool(Arc::new(vqd_exec::ExecPool::new(2)));
        let (tx, rx) = channel();
        let certain = |parallelism: Option<u64>| {
            let envelope = Envelope::new(
                "par",
                Limits::none(),
                Request::Certain {
                    schema: "E/2".into(),
                    views: "V(x,y) :- E(x,y).".into(),
                    query: "Q(x,z) :- E(x,y), E(y,z).".into(),
                    extent: "V(A,B). V(B,C).".into(),
                },
            );
            Job {
                envelope: match parallelism {
                    Some(p) => envelope.with_parallelism(p),
                    None => envelope,
                },
                budget: Budget::unlimited(),
                reply: tx.clone().into(),
                stamps: None,
            }
        };
        run_job(certain(None), &ctx);
        run_job(certain(Some(8)), &ctx);
        let seq = rx.recv().expect("sequential reply");
        let par = rx.recv().expect("parallel reply");
        assert_eq!(seq.outcome, par.outcome, "fan-out must not change the answer");
        assert_eq!(seq.work.threads_used, 0, "absent field stays sequential");
        assert_eq!(par.work.threads_used, 2, "requested 8, clamped to the pool's 2");
        assert_eq!(seq.work.steps, par.work.steps, "budget accounting stays exact");
    }

    #[test]
    fn profiles_are_per_request_deltas_not_cumulative_totals() {
        let ctx = ctx();
        let (tx, rx) = channel();
        let job = || Job {
            envelope: Envelope::new(
                "a",
                Limits::none(),
                Request::Certain {
                    schema: "E/2".into(),
                    views: "V(x,y) :- E(x,y).".into(),
                    query: "Q(x,z) :- E(x,y), E(y,z).".into(),
                    extent: "V(A,B). V(B,C).".into(),
                },
            )
            .with_profile(true),
            budget: Budget::unlimited(),
            reply: tx.clone().into(),
            stamps: None,
        };
        // Both jobs run on this thread, so the thread-local engine
        // counters keep growing across them; a leaky diff would make the
        // second profile include the first request's work.
        run_job(job(), &ctx);
        run_job(job(), &ctx);
        let first = rx.recv().expect("reply").profile.expect("profile requested");
        let second = rx.recv().expect("reply").profile.expect("profile requested");
        assert!(!first.is_zero(), "chase work must show up in the profile");
        assert!(first.get(Metric::ChaseRounds) > 0);
        assert_eq!(first, second, "identical requests must report identical deltas");
        let reg = ctx.registry.snapshot();
        assert_eq!(reg.counter("op.certain_sound.requests"), 2);
        let h = reg.histogram("op.certain_sound.latency_ms").expect("latency recorded");
        assert_eq!(h.count, 2);
    }
}
