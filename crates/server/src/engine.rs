//! Request execution: one [`Request`] + one clamped [`Budget`] in, one
//! [`Outcome`] out.
//!
//! Every path is budgeted and fallible: parse failures, hypothesis
//! violations, and schema mismatches come back as structured
//! [`Outcome::Error`]s; budget trips come back as
//! [`Outcome::Exhausted`] with the engine's own partial-progress
//! message. Workers additionally wrap [`execute`] in `catch_unwind`, so
//! even a server-side bug degrades to an `internal` error instead of a
//! dead worker.

// The helpers below use `Result<_, Outcome>` so `?` can short-circuit
// straight to the wire reply; the Err is the reply itself, built once
// and returned once, so its size is not worth boxing over.
#![allow(clippy::result_large_err)]

use crate::cache::{derived_key, CacheConfig, HandleEntry, InstanceCache};
use crate::metrics::Metrics;
use crate::proto::{ErrorKind, Outcome, Request, WireCounterexample};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;
use vqd_budget::{Budget, CancelToken, VqdError};
use vqd_obs::Registry;
use vqd_chase::CqViews;
use vqd_core::certain::{canonical_database_budgeted, certain_from_canonical, certain_sound_ctx};
use vqd_core::determinacy::{
    check_exhaustive_ctx, decide_finite_budgeted, decide_unrestricted_budgeted, Counterexample,
    FiniteVerdict, SemanticVerdict,
};
use vqd_eval::{contained_bounded_budgeted, BoundedContainment};
use vqd_exec::{ExecCtx, ExecPool};
use vqd_instance::{DomainNames, Schema};
use vqd_query::{parse_instance, parse_program, parse_query, Cq, CqLang, QueryExpr, ViewSet};
use vqd_router::Fragment;

/// What the engine can reach besides the request itself: the shared
/// metrics (for [`Request::Stats`]) and the server's shutdown token
/// (for [`Request::Shutdown`]).
#[derive(Clone)]
pub struct EngineCtx {
    /// Service counters.
    pub metrics: Arc<Metrics>,
    /// Server-wide observability registry: per-op request counters,
    /// latency histograms, and folded engine counters.
    pub registry: Arc<Registry>,
    /// When the server started (drives the uptime gauge).
    pub started: Instant,
    /// Cross-request instance cache: put handles + derived chases.
    pub cache: Arc<InstanceCache>,
    /// Tripping this token starts a server drain.
    pub shutdown: CancelToken,
    /// Whether `debug_panic` is live (worker-containment tests only).
    pub debug_ops: bool,
    /// The engine's shard pool for intra-request parallelism — distinct
    /// from the per-request worker pool, shared by every worker. Its
    /// size caps the `parallelism` any envelope may request.
    pub exec: Arc<ExecPool>,
}

impl EngineCtx {
    /// A fresh context with its own metrics/registry (used by tests and
    /// embedded setups; [`crate::server::spawn`] builds the real one).
    pub fn new(shutdown: CancelToken) -> EngineCtx {
        EngineCtx::with_cache_config(shutdown, CacheConfig::default())
    }

    /// [`EngineCtx::new`] with explicit cache sizing.
    pub fn with_cache_config(shutdown: CancelToken, cache: CacheConfig) -> EngineCtx {
        let registry = Arc::new(Registry::new());
        EngineCtx {
            metrics: Arc::new(Metrics::new()),
            cache: Arc::new(InstanceCache::new(cache, Arc::clone(&registry))),
            registry,
            started: Instant::now(),
            shutdown,
            debug_ops: false,
            exec: Arc::clone(ExecPool::global()),
        }
    }

    /// Replaces the engine's shard pool (the server wires its
    /// `--engine-threads` pool through here).
    pub fn with_engine_pool(mut self, exec: Arc<ExecPool>) -> EngineCtx {
        self.exec = exec;
        self
    }
}

/// Shorthand for building an error outcome.
fn err(kind: ErrorKind, message: impl Into<String>) -> Outcome {
    Outcome::Error { kind, message: message.into() }
}

/// Maps an engine-level [`VqdError`] onto the wire taxonomy.
fn vqd_error(e: VqdError) -> Outcome {
    match e {
        VqdError::Exhausted(ex) => Outcome::Exhausted {
            reason: ex.reason.to_string(),
            partial: ex.partial.clone(),
        },
        VqdError::Parse(msg) => err(ErrorKind::Parse, msg),
        e @ VqdError::SchemaMismatch { .. } => err(ErrorKind::SchemaMismatch, e.to_string()),
        e @ VqdError::InvalidInput { .. } => err(ErrorKind::InvalidInput, e.to_string()),
        e @ VqdError::NotStratifiable(_) => err(ErrorKind::InvalidInput, e.to_string()),
    }
}

/// Parsed views + query context shared by most operations.
struct ParsedPair {
    names: DomainNames,
    views: ViewSet,
    query: QueryExpr,
}

fn parse_pair(schema: &str, views: &str, query: &str) -> Result<ParsedPair, Outcome> {
    let schema = Schema::parse(schema)
        .map_err(|e| err(ErrorKind::Parse, format!("schema: {e}")))?;
    let mut names = DomainNames::new();
    let prog = parse_program(&schema, &mut names, views)
        .map_err(|e| err(ErrorKind::Parse, format!("views: {e}")))?;
    if prog.defs.is_empty() {
        return Err(err(ErrorKind::InvalidInput, "views: at least one view is required"));
    }
    for (i, (name, _)) in prog.defs.iter().enumerate() {
        if prog.defs[..i].iter().any(|(n, _)| n == name) {
            return Err(err(
                ErrorKind::InvalidInput,
                format!("views: duplicate view name `{name}`"),
            ));
        }
    }
    let views = ViewSet::new(&schema, prog.defs);
    let query = parse_query(&schema, &mut names, query)
        .map_err(|e| err(ErrorKind::Parse, format!("query: {e}")))?;
    Ok(ParsedPair { names, views, query })
}

/// The Section 3 hypotheses: plain-CQ views and a plain-CQ query.
fn require_cq(pair: &ParsedPair) -> Result<(CqViews, Cq), Outcome> {
    let views = CqViews::try_new(pair.views.clone()).map_err(vqd_error)?;
    let q = pair
        .query
        .as_cq()
        .filter(|q| q.language() == CqLang::Cq)
        .ok_or_else(|| {
            err(
                ErrorKind::InvalidInput,
                "this operation requires a plain CQ query (no =, ≠, ¬, FO)",
            )
        })?;
    Ok((views, q.clone()))
}

fn render_counterexample(c: &Counterexample, names: &DomainNames) -> WireCounterexample {
    WireCounterexample {
        d1: c.d1.render(names),
        d2: c.d2.render(names),
        image: c.image.render(names),
        q1: c.q1.render(names),
        q2: c.q2.render(names),
    }
}

/// Folds a classified fragment into the registry and produces the
/// reply's additive `fragment` note. `routed` is true for the decide
/// family (where the classification actually picked an execution path),
/// false for `classify` itself (purely structural, nothing routed).
fn attribute(fragment: Option<Fragment>, ctx: &EngineCtx, routed: bool) -> Option<&'static str> {
    let fragment = fragment?;
    ctx.registry.counter(&format!("router.fragment.{}", fragment.tag())).inc();
    if routed {
        let hit = fragment == Fragment::ProjectSelect;
        ctx.registry
            .counter(if hit { "router.fastpath.hits" } else { "router.fastpath.misses" })
            .inc();
    }
    Some(fragment.wire_note())
}

/// Executes one request under `budget`, sequentially. Never panics on
/// bad input; may panic only on a genuine engine bug (callers wrap in
/// `catch_unwind`).
///
/// Deprecated spelling of [`execute_ctx`] with a sequential context;
/// embedded callers and most tests only care about the outcome.
pub fn execute(request: &Request, budget: &Budget, ctx: &EngineCtx) -> Outcome {
    execute_ctx(request, &ExecCtx::sequential(budget.clone()), ctx)
}

/// [`execute_attributed_ctx`] without the fragment note.
pub fn execute_ctx(request: &Request, exec: &ExecCtx, ctx: &EngineCtx) -> Outcome {
    execute_attributed_ctx(request, exec, ctx).0
}

/// Deprecated spelling of [`execute_attributed_ctx`] with a sequential
/// context.
pub fn execute_attributed(
    request: &Request,
    budget: &Budget,
    ctx: &EngineCtx,
) -> (Outcome, Option<&'static str>) {
    execute_attributed_ctx(request, &ExecCtx::sequential(budget.clone()), ctx)
}

/// [`execute_ctx`] plus the router's per-request fragment attribution:
/// the second component is the additive `fragment` wire note
/// (`project-select` / `path` / `undecidable-in-general`) for the ops
/// the router classifies, `None` otherwise. The note is attached even
/// when the outcome is an error or exhaustion — a `general` request
/// that runs out of budget still tells the client *why* no definite
/// verdict was possible.
///
/// The execution context carries both the request's clamped budget and
/// its (clamped) parallelism: the certain-answer and semantic-scan ops
/// fan out on the engine pool when `exec.is_parallel()`, with
/// byte-identical outcomes either way.
pub fn execute_attributed_ctx(
    request: &Request,
    exec: &ExecCtx,
    ctx: &EngineCtx,
) -> (Outcome, Option<&'static str>) {
    let budget = exec.budget();
    match request {
        Request::Decide { schema, views, query } => {
            let (res, fragment) = run_decide(schema, views, query, budget);
            let note = attribute(fragment, ctx, true);
            let outcome = match res {
                Ok((determined, rewriting)) => Outcome::Decided { determined, rewriting },
                Err(o) => o,
            };
            (outcome, note)
        }
        Request::Rewrite { schema, views, query } => {
            let (res, fragment) = run_decide(schema, views, query, budget);
            let note = attribute(fragment, ctx, true);
            let outcome = match res {
                Ok((determined, rewriting)) => Outcome::Rewritten { exists: determined, rewriting },
                Err(o) => o,
            };
            (outcome, note)
        }
        Request::Classify { schema, views, query } => run_classify(schema, views, query, ctx),
        other => (execute_unattributed(other, exec, ctx), None),
    }
}

/// The ops the router does not classify.
fn execute_unattributed(request: &Request, exec: &ExecCtx, ctx: &EngineCtx) -> Outcome {
    let budget = exec.budget();
    match request {
        Request::Ping => Outcome::Pong,
        Request::Stats => {
            let metrics = ctx.metrics.snapshot();
            // Refresh the point-in-time gauges so the registry snapshot
            // is self-contained.
            ctx.registry
                .gauge("server.uptime_ms")
                .set(ctx.started.elapsed().as_millis() as u64);
            ctx.registry.gauge("server.queue_depth").set(metrics.queue_depth);
            ctx.registry
                .gauge("server.queue_depth_hwm")
                .raise_to(metrics.max_queue_depth);
            ctx.registry
                .gauge("server.connections_open")
                .set(metrics.connections_open);
            Outcome::StatsSnapshot { metrics, registry: ctx.registry.snapshot() }
        }
        Request::Flight => Outcome::FlightSnapshot { jsonl: vqd_obs::flight_jsonl() },
        Request::MetricsProm => {
            // Same point-in-time gauge refresh as `stats`, so a scrape
            // sees current depth/uptime rather than last-request values.
            let metrics = ctx.metrics.snapshot();
            ctx.registry
                .gauge("server.uptime_ms")
                .set(ctx.started.elapsed().as_millis() as u64);
            ctx.registry.gauge("server.queue_depth").set(metrics.queue_depth);
            ctx.registry
                .gauge("server.queue_depth_hwm")
                .raise_to(metrics.max_queue_depth);
            ctx.registry
                .gauge("server.connections_open")
                .set(metrics.connections_open);
            Outcome::MetricsText { text: vqd_obs::render_prometheus(&ctx.registry.snapshot()) }
        }
        Request::Shutdown => {
            ctx.shutdown.cancel();
            Outcome::ShuttingDown
        }
        Request::Decide { .. } | Request::Rewrite { .. } | Request::Classify { .. } => {
            unreachable!("attributed ops are handled by execute_attributed")
        }
        Request::Certain { schema, views, query, extent } => {
            run_certain(schema, views, query, extent, exec)
        }
        Request::CertainHandle { schema, views, query, handle } => {
            run_certain_handle(schema, views, query, handle, exec, ctx)
        }
        Request::PutInstance { schema, extent } => run_put_instance(schema, extent, ctx),
        Request::EvictInstance { handle } => Outcome::Evicted {
            handle: handle.clone(),
            existed: ctx.cache.evict_handle(handle),
        },
        Request::CacheStats => {
            let s = ctx.cache.stats();
            let config = ctx.cache.config();
            Outcome::CacheStatsSnapshot {
                entries: s.entries,
                bytes: s.bytes,
                hits: s.hits,
                misses: s.misses,
                evictions: s.evictions,
                puts: s.puts,
                max_entries: config.max_entries as u64,
                max_bytes: config.max_bytes,
                disk_hits: s.disk_hits,
                disk_misses: s.disk_misses,
                disk_spills: s.disk_spills,
                disk_promotions: s.disk_promotions,
                disk_corrupt_dropped: s.disk_corrupt_dropped,
                disk_io_errors: s.disk_io_errors,
                disk_bytes: s.disk_bytes,
            }
        }
        Request::DebugPanic => {
            if ctx.debug_ops {
                panic!("debug_panic: injected worker panic");
            }
            err(
                ErrorKind::Unsupported,
                "debug_panic requires a server started with enable_debug_ops",
            )
        }
        Request::Containment { schema, q1, q2, max_domain, space_limit } => {
            run_containment(schema, q1, q2, *max_domain, *space_limit, budget)
        }
        Request::Finite { schema, views, query, max_domain, space_limit } => {
            run_finite(schema, views, query, *max_domain, *space_limit, budget)
        }
        Request::Semantic { schema, views, query, domain, space_limit } => {
            run_semantic(schema, views, query, *domain, *space_limit, exec)
        }
    }
}

/// Verdict + optional rendered rewriting, or a ready-made error outcome.
type DecideResult = Result<(bool, Option<String>), Outcome>;

/// Decide/rewrite with fragment attribution. The fragment is classified
/// *before* the (possibly exhausting) decision runs, so it survives the
/// `Err` path: an exhausted `general` request still reports its
/// fragment. Pre-classification failures (parse errors, non-CQ input)
/// carry no fragment — nothing was classified.
fn run_decide(
    schema: &str,
    views: &str,
    query: &str,
    budget: &Budget,
) -> (DecideResult, Option<Fragment>) {
    let pair = match parse_pair(schema, views, query) {
        Ok(p) => p,
        Err(o) => return (Err(o), None),
    };
    let (cq_views, q) = match require_cq(&pair) {
        Ok(v) => v,
        Err(o) => return (Err(o), None),
    };
    let fragment = vqd_router::classify(&cq_views, &q);
    let res = decide_unrestricted_budgeted(&cq_views, &q, budget)
        .map(|out| (out.determined, out.rewriting.map(|r| r.render("R"))))
        .map_err(vqd_error);
    (res, Some(fragment))
}

/// Purely structural: parse, classify, answer. Never chases, never
/// builds an index; the only budget this op could spend is parsing,
/// which is not budgeted, so the work envelope comes back all-zero.
fn run_classify(
    schema: &str,
    views: &str,
    query: &str,
    ctx: &EngineCtx,
) -> (Outcome, Option<&'static str>) {
    let pair = match parse_pair(schema, views, query) {
        Ok(p) => p,
        Err(o) => return (o, None),
    };
    // Unlike the decide family, classification accepts *any* parsed
    // pair: non-CQ views or queries are simply `general`.
    let fragment = vqd_router::classify_pair(&pair.views, &pair.query);
    let note = attribute(Some(fragment), ctx, false);
    (
        Outcome::Classified {
            fragment: fragment.tag().to_owned(),
            decidable: fragment.is_decidable(),
            route: fragment.route().to_owned(),
        },
        note,
    )
}

fn run_certain(schema: &str, views: &str, query: &str, extent: &str, exec: &ExecCtx) -> Outcome {
    let pair = match parse_pair(schema, views, query) {
        Ok(p) => p,
        Err(o) => return o,
    };
    let (cq_views, q) = match require_cq(&pair) {
        Ok(v) => v,
        Err(o) => return o,
    };
    let mut names = pair.names;
    let extent = match parse_instance(cq_views.as_view_set().output_schema(), &mut names, extent)
    {
        Ok(i) => i,
        Err(e) => return err(ErrorKind::Parse, format!("extent: {e}")),
    };
    match certain_sound_ctx(&cq_views, &q, &extent, exec) {
        Ok(rel) => Outcome::CertainAnswers {
            count: rel.len() as u64,
            answers: rel.render(&names),
        },
        Err(e) => vqd_error(e),
    }
}

/// Name-sensitive extent fingerprint. Two extents with equal
/// fingerprints parse to identical instances under *any* identical
/// pre-seeded [`DomainNames`]: the fresh-names rendering captures both
/// the fact set and the first-occurrence order of constants, which is
/// all request-time interning depends on. That makes the fingerprint
/// safe to use in [`derived_key`]: equal key ⟹ identical chase ⟹
/// byte-identical answers.
fn extent_fingerprint(schema: &str, rendered: &str) -> String {
    let mut h = DefaultHasher::new();
    schema.hash(&mut h);
    rendered.hash(&mut h);
    format!("{:016x}", h.finish())
}

fn run_put_instance(schema: &str, extent: &str, ctx: &EngineCtx) -> Outcome {
    let parsed_schema = match Schema::parse(schema) {
        Ok(s) => s,
        Err(e) => return err(ErrorKind::Parse, format!("schema: {e}")),
    };
    let mut names = DomainNames::new();
    let instance = match parse_instance(&parsed_schema, &mut names, extent) {
        Ok(i) => i,
        Err(e) => return err(ErrorKind::Parse, format!("extent: {e}")),
    };
    let fingerprint = extent_fingerprint(schema, &instance.render(&names));
    let tuples = instance.total_tuples() as u64;
    let handle = ctx.cache.put(HandleEntry {
        schema: schema.to_owned(),
        extent: extent.to_owned(),
        fingerprint: fingerprint.clone(),
        tuples,
    });
    Outcome::InstancePut { handle, fingerprint, tuples }
}

/// [`run_certain`] with the extent read from the cache. A hit on the
/// derived entry evaluates over the cached canonical database with zero
/// index builds; a miss chases once and caches the result for the next
/// request with the same (schema, views, query, extent) key. Both paths
/// render through the same request-local names, so the reply is
/// byte-identical to the inline form modulo the work envelope.
fn run_certain_handle(
    schema: &str,
    views: &str,
    query: &str,
    handle: &str,
    exec: &ExecCtx,
    ctx: &EngineCtx,
) -> Outcome {
    let Some(entry) = ctx.cache.get_handle(handle) else {
        return err(
            ErrorKind::UnknownHandle,
            format!("unknown instance handle `{handle}` (never put, or evicted): re-put and retry"),
        );
    };
    let pair = match parse_pair(schema, views, query) {
        Ok(p) => p,
        Err(o) => return o,
    };
    let (cq_views, q) = match require_cq(&pair) {
        Ok(v) => v,
        Err(o) => return o,
    };
    let mut names = pair.names;
    let extent =
        match parse_instance(cq_views.as_view_set().output_schema(), &mut names, &entry.extent) {
            Ok(i) => i,
            Err(e) => return err(ErrorKind::Parse, format!("extent (handle {handle}): {e}")),
        };
    let key = derived_key(schema, views, query, &entry.fingerprint);
    let answers = match ctx.cache.get_index(&key) {
        Some(chased) => certain_from_canonical(&q, &chased, exec),
        None => match canonical_database_budgeted(&cq_views, &extent, exec) {
            Ok(chased) => {
                let shared = chased.into_shared();
                ctx.cache.insert_index(key, Arc::clone(&shared));
                certain_from_canonical(&q, &shared, exec)
            }
            Err(e) => return vqd_error(e),
        },
    };
    match answers {
        Ok(rel) => Outcome::CertainAnswers {
            count: rel.len() as u64,
            answers: rel.render(&names),
        },
        Err(e) => vqd_error(e),
    }
}

fn run_containment(
    schema: &str,
    q1: &str,
    q2: &str,
    max_domain: u64,
    space_limit: u64,
    budget: &Budget,
) -> Outcome {
    let schema = match Schema::parse(schema) {
        Ok(s) => s,
        Err(e) => return err(ErrorKind::Parse, format!("schema: {e}")),
    };
    let mut names = DomainNames::new();
    let parse_cq = |names: &mut DomainNames, label: &str, src: &str| {
        let q = parse_query(&schema, names, src)
            .map_err(|e| err(ErrorKind::Parse, format!("{label}: {e}")))?;
        q.as_cq().cloned().ok_or_else(|| {
            err(ErrorKind::InvalidInput, format!("{label}: containment requires a CQ"))
        })
    };
    let q1 = match parse_cq(&mut names, "q1", q1) {
        Ok(q) => q,
        Err(o) => return o,
    };
    let q2 = match parse_cq(&mut names, "q2", q2) {
        Ok(q) => q,
        Err(o) => return o,
    };
    if q1.arity() != q2.arity() {
        return err(
            ErrorKind::InvalidInput,
            format!("arity mismatch: q1/{} vs q2/{}", q1.arity(), q2.arity()),
        );
    }
    match contained_bounded_budgeted(
        &q1,
        &q2,
        max_domain as usize,
        u128::from(space_limit),
        budget,
    ) {
        BoundedContainment::NoCounterexampleUpTo(n) => Outcome::Contained {
            verdict: "no-counterexample".into(),
            bound: Some(n as u64),
            witness: None,
        },
        BoundedContainment::Refuted(d) => Outcome::Contained {
            verdict: "refuted".into(),
            bound: None,
            witness: Some(d.render(&names)),
        },
        BoundedContainment::TooLarge => Outcome::Contained {
            verdict: "too-large".into(),
            bound: None,
            witness: None,
        },
        BoundedContainment::Exhausted(e) => Outcome::Exhausted {
            reason: e.reason.to_string(),
            partial: e.partial.clone(),
        },
    }
}

fn run_finite(
    schema: &str,
    views: &str,
    query: &str,
    max_domain: u64,
    space_limit: u64,
    budget: &Budget,
) -> Outcome {
    let pair = match parse_pair(schema, views, query) {
        Ok(p) => p,
        Err(o) => return o,
    };
    let (cq_views, q) = match require_cq(&pair) {
        Ok(v) => v,
        Err(o) => return o,
    };
    match decide_finite_budgeted(
        &cq_views,
        &q,
        max_domain as usize,
        u128::from(space_limit),
        budget,
    ) {
        Ok(FiniteVerdict::Determined(r)) => Outcome::FiniteOutcome {
            verdict: "determined".into(),
            rewriting: Some(r.render("R")),
            searched_up_to: None,
            counterexample: None,
        },
        Ok(FiniteVerdict::NotDetermined(c)) => Outcome::FiniteOutcome {
            verdict: "not-determined".into(),
            rewriting: None,
            searched_up_to: None,
            counterexample: Some(render_counterexample(&c, &pair.names)),
        },
        Ok(FiniteVerdict::Open { searched_up_to }) => Outcome::FiniteOutcome {
            verdict: "open".into(),
            rewriting: None,
            searched_up_to: Some(searched_up_to as u64),
            counterexample: None,
        },
        Ok(FiniteVerdict::Exhausted(e)) => Outcome::Exhausted {
            reason: e.reason.to_string(),
            partial: e.partial.clone(),
        },
        Err(e) => vqd_error(e),
    }
}

fn run_semantic(
    schema: &str,
    views: &str,
    query: &str,
    domain: u64,
    space_limit: u64,
    exec: &ExecCtx,
) -> Outcome {
    let pair = match parse_pair(schema, views, query) {
        Ok(p) => p,
        Err(o) => return o,
    };
    match check_exhaustive_ctx(
        &pair.views,
        &pair.query,
        domain as usize,
        u128::from(space_limit),
        exec,
    ) {
        Ok(SemanticVerdict::NoCounterexampleUpTo(n)) => Outcome::SemanticOutcome {
            verdict: "no-counterexample".into(),
            bound: Some(n as u64),
            counterexample: None,
        },
        Ok(SemanticVerdict::NotDetermined(c)) => Outcome::SemanticOutcome {
            verdict: "not-determined".into(),
            bound: None,
            counterexample: Some(render_counterexample(&c, &pair.names)),
        },
        Ok(SemanticVerdict::TooLarge { .. }) => Outcome::SemanticOutcome {
            verdict: "too-large".into(),
            bound: None,
            counterexample: None,
        },
        Ok(SemanticVerdict::Exhausted(e)) => Outcome::Exhausted {
            reason: e.reason.to_string(),
            partial: e.partial.clone(),
        },
        Err(e) => vqd_error(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> EngineCtx {
        EngineCtx::new(CancelToken::new())
    }

    fn decide_req(views: &str, query: &str) -> Request {
        Request::Decide {
            schema: "E/2,P/1".into(),
            views: views.into(),
            query: query.into(),
        }
    }

    #[test]
    fn decide_path_pair_is_determined_with_rewriting() {
        let out = execute(
            &decide_req("V(x,y) :- E(x,y).", "Q(x,z) :- E(x,y), E(y,z)."),
            &Budget::unlimited(),
            &ctx(),
        );
        match out {
            Outcome::Decided { determined: true, rewriting: Some(r) } => {
                assert!(r.contains("V("), "rewriting must be over σ_V, got {r}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn parse_failures_are_structured_errors() {
        let out = execute(
            &decide_req("V(x,y) :- E(x,y).", "Q(x :- garbage"),
            &Budget::unlimited(),
            &ctx(),
        );
        match out {
            Outcome::Error { kind: ErrorKind::Parse, message } => {
                assert!(message.contains("query"));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let out = execute(
            &Request::Decide {
                schema: "E/bad".into(),
                views: String::new(),
                query: String::new(),
            },
            &Budget::unlimited(),
            &ctx(),
        );
        assert!(matches!(out, Outcome::Error { kind: ErrorKind::Parse, .. }));
    }

    #[test]
    fn non_cq_views_are_invalid_input() {
        let out = execute(
            &decide_req("V(x) :- E(x,y), !P(y).", "Q(x) :- P(x)."),
            &Budget::unlimited(),
            &ctx(),
        );
        assert!(
            matches!(out, Outcome::Error { kind: ErrorKind::InvalidInput, .. }),
            "got {out:?}"
        );
    }

    #[test]
    fn exhaustion_is_an_outcome_not_an_error() {
        let out = execute(
            &Request::Finite {
                schema: "E/2".into(),
                views: "V(x,y) :- E(x,z), E(z,y).".into(),
                query: "Q(x,y) :- E(x,a), E(a,b), E(b,y).".into(),
                max_domain: 3,
                space_limit: 1 << 22,
            },
            &Budget::unlimited().with_step_limit(2),
            &ctx(),
        );
        match out {
            Outcome::Exhausted { reason, partial } => {
                assert_eq!(reason, "step limit reached");
                assert!(!partial.is_empty());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn containment_reports_witnesses() {
        let out = run_containment(
            "E/2,P/1",
            "Q(x) :- P(x).",
            "Q(x) :- P(x), E(x,x).",
            2,
            1 << 16,
            &Budget::unlimited(),
        );
        match out {
            Outcome::Contained { verdict, witness: Some(w), .. } => {
                assert_eq!(verdict, "refuted");
                assert!(w.contains("P"));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let out = run_containment(
            "E/2,P/1",
            "Q(x) :- P(x), E(x,x).",
            "Q(x) :- P(x).",
            2,
            1 << 16,
            &Budget::unlimited(),
        );
        assert!(
            matches!(out, Outcome::Contained { ref verdict, .. } if verdict == "no-counterexample"),
            "got {out:?}"
        );
    }

    #[test]
    fn certain_answers_on_identity_views() {
        let out = execute(
            &Request::Certain {
                schema: "E/2".into(),
                views: "V(x,y) :- E(x,y).".into(),
                query: "Q(x,z) :- E(x,y), E(y,z).".into(),
                extent: "V(A,B). V(B,C).".into(),
            },
            &Budget::unlimited(),
            &ctx(),
        );
        match out {
            Outcome::CertainAnswers { answers, count } => {
                assert_eq!(count, 1);
                assert!(answers.contains('A') && answers.contains('C'), "{answers}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn handle_extents_answer_identically_to_inline_and_then_hit() {
        let c = ctx();
        let put = execute(
            &Request::PutInstance { schema: "V/2".into(), extent: "V(A,B). V(B,C).".into() },
            &Budget::unlimited(),
            &c,
        );
        let Outcome::InstancePut { handle, tuples: 2, .. } = put else {
            panic!("unexpected put outcome {put:?}");
        };
        let certain = |extent_handle: Option<&str>| match extent_handle {
            None => Request::Certain {
                schema: "E/2".into(),
                views: "V(x,y) :- E(x,y).".into(),
                query: "Q(x,z) :- E(x,y), E(y,z).".into(),
                extent: "V(A,B). V(B,C).".into(),
            },
            Some(h) => Request::CertainHandle {
                schema: "E/2".into(),
                views: "V(x,y) :- E(x,y).".into(),
                query: "Q(x,z) :- E(x,y), E(y,z).".into(),
                handle: h.into(),
            },
        };
        let inline = execute(&certain(None), &Budget::unlimited(), &c);
        let miss = execute(&certain(Some(&handle)), &Budget::unlimited(), &c);
        let hit = execute(&certain(Some(&handle)), &Budget::unlimited(), &c);
        assert_eq!(inline, miss, "handle answers must match inline answers");
        assert_eq!(miss, hit, "cache hits must not change the verdict");
        let stats = c.cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn unknown_handles_are_typed_errors_and_evict_reports_absence() {
        let c = ctx();
        let out = execute(
            &Request::CertainHandle {
                schema: "E/2".into(),
                views: "V(x,y) :- E(x,y).".into(),
                query: "Q(x) :- E(x,y).".into(),
                handle: "h999".into(),
            },
            &Budget::unlimited(),
            &c,
        );
        assert!(
            matches!(out, Outcome::Error { kind: ErrorKind::UnknownHandle, .. }),
            "got {out:?}"
        );
        let out = execute(
            &Request::EvictInstance { handle: "h999".into() },
            &Budget::unlimited(),
            &c,
        );
        assert_eq!(out, Outcome::Evicted { handle: "h999".into(), existed: false });
    }

    #[test]
    fn parallel_context_answers_identically_and_reports_fan_out() {
        let c = ctx();
        let req = Request::Certain {
            schema: "E/2".into(),
            views: "V(x,y) :- E(x,y).".into(),
            query: "Q(x,z) :- E(x,y), E(y,z).".into(),
            extent: "V(A,B). V(B,C). V(C,D).".into(),
        };
        let seq = execute(&req, &Budget::unlimited(), &c);
        let exec = ExecCtx::with_parallelism(Budget::unlimited(), 4);
        let par = execute_ctx(&req, &exec, &c);
        assert_eq!(seq, par, "parallel outcomes must be byte-identical");
        assert_eq!(exec.threads_used(), 4, "the certain eval must fan out");
        // The semantic scan fans out too, with the same verdict.
        let sem = Request::Semantic {
            schema: "E/2".into(),
            views: "V(x,y) :- E(x,y).".into(),
            query: "Q(x,z) :- E(x,y), E(y,z).".into(),
            domain: 2,
            space_limit: 1 << 20,
        };
        let seq = execute(&sem, &Budget::unlimited(), &c);
        let exec = ExecCtx::with_parallelism(Budget::unlimited(), 2);
        assert_eq!(seq, execute_ctx(&sem, &exec, &c));
        assert_eq!(exec.threads_used(), 2);
    }

    #[test]
    fn shutdown_trips_the_token() {
        let c = ctx();
        assert!(!c.shutdown.is_canceled());
        let out = execute(&Request::Shutdown, &Budget::unlimited(), &c);
        assert_eq!(out, Outcome::ShuttingDown);
        assert!(c.shutdown.is_canceled());
    }
}
