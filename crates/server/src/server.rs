//! The TCP service: accept loop, connection threads, budget clamping,
//! and graceful shutdown.
//!
//! Threading model (all `std`, no async runtime):
//!
//! * one **acceptor** thread polls a non-blocking listener;
//! * one **connection** thread per client does I/O only — it reads a
//!   line, submits a [`Job`] to the bounded pool, blocks on the reply,
//!   and writes it back (requests on one connection are answered in
//!   order; concurrency comes from concurrent connections);
//! * `workers` **worker** threads execute requests under clamped
//!   budgets (see [`Pool`]).
//!
//! Per-request budgets are `min(client-requested limits, server caps)`
//! via [`Budget::min_of`], and every budget observes the server's
//! shutdown [`CancelToken`]: [`ServerHandle::shutdown`] (or a wire
//! [`Request::Shutdown`](crate::proto::Request::Shutdown)) trips the
//! token, stops admissions, drains in-flight and queued work — which
//! degrades to structured `exhausted (canceled)` replies carrying
//! partial progress — then joins every thread.

use crate::cache::{CacheConfig, InstanceCache};
use crate::engine::EngineCtx;
use crate::metrics::Metrics;
use crate::pool::{Job, Pool, QueueHandle, SubmitError};
use crate::proto::{Envelope, ErrorKind, Limits, Outcome, Response, WireMetrics, WireStats};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use vqd_budget::{Budget, CancelToken};

/// Server-side resource caps applied to *every* request, whatever the
/// client asked for.
#[derive(Clone, Debug)]
pub struct ServerCaps {
    /// Hard wall-clock cap per request.
    pub max_deadline: Duration,
    /// Hard step cap per request (`None` = deadline-only).
    pub max_steps: Option<u64>,
    /// Hard tuple cap per request (`None` = deadline-only).
    pub max_tuples: Option<u64>,
    /// Cross-request instance cache sizing. Lives here (not in
    /// [`ServerConfig`]) so existing `ServerConfig` literals written
    /// against v1 keep compiling via `ServerCaps::default()`.
    pub cache: CacheConfig,
    /// Slow-client guard: how long a connection may sit on a *partial*
    /// request line before it is answered with a typed `timeout` error
    /// and dropped. Idle connections (no partial line) are unaffected.
    pub conn_read_timeout: Duration,
    /// Enables the `debug_panic` op (worker-panic containment tests
    /// only). Off by default: production servers reply `unsupported`.
    pub enable_debug_ops: bool,
}

impl Default for ServerCaps {
    fn default() -> ServerCaps {
        ServerCaps {
            max_deadline: Duration::from_secs(10),
            max_steps: None,
            max_tuples: None,
            cache: CacheConfig::default(),
            conn_read_timeout: Duration::from_secs(10),
            enable_debug_ops: false,
        }
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are rejected with
    /// `overloaded`.
    pub queue_depth: usize,
    /// Per-request resource caps.
    pub caps: ServerCaps,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            caps: ServerCaps::default(),
        }
    }
}

/// State shared by the acceptor, connection threads, and workers.
struct Shared {
    /// Master budget: its cancel token *is* the shutdown signal; its
    /// counters are never advanced (per-request budgets are fresh).
    master: Budget,
    caps: ServerCaps,
    metrics: Arc<Metrics>,
    registry: Arc<vqd_obs::Registry>,
    /// The instance cache, shared with the worker pool's [`EngineCtx`]
    /// so tests and the loadgen restart phase can reach the disk tier
    /// (fault arming, segment paths) on a live server.
    cache: Arc<InstanceCache>,
}

impl Shared {
    /// `min(client limits, server caps)` with the shutdown token wired
    /// in as cancellation authority.
    fn clamp(&self, limits: &Limits) -> Budget {
        let mut cap = self.master.clone().with_deadline(self.caps.max_deadline);
        if let Some(s) = self.caps.max_steps {
            cap = cap.with_step_limit(s);
        }
        if let Some(t) = self.caps.max_tuples {
            cap = cap.with_tuple_limit(t);
        }
        Budget::min_of(&cap, &limits.to_budget())
    }

    fn shutdown_token(&self) -> CancelToken {
        self.master.cancel_token()
    }
}

/// A running server. Dropping the handle trips the shutdown token but
/// does not block; call [`ServerHandle::shutdown`] for an orderly drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    pool: Option<Pool>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time metrics.
    pub fn metrics(&self) -> WireMetrics {
        self.shared.metrics.snapshot()
    }

    /// The server-wide observability registry (per-op counters, latency
    /// histograms, folded engine counters).
    pub fn registry(&self) -> Arc<vqd_obs::Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// The shutdown token (share it with supervisors/signal handlers).
    pub fn shutdown_token(&self) -> CancelToken {
        self.shared.shutdown_token()
    }

    /// The live instance cache (tests arm disk faults through it).
    pub fn cache(&self) -> Arc<InstanceCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Whether a shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown_token().is_canceled()
    }

    /// Blocks until a shutdown is requested (e.g. a wire `shutdown`
    /// request), then drains and returns the final metrics.
    pub fn wait(self) -> WireMetrics {
        while !self.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.shutdown()
    }

    /// Graceful shutdown: trip the token, stop accepting, drain
    /// in-flight and queued requests (they observe the token and reply
    /// `exhausted (canceled)` with partial progress), join everything,
    /// and report the final metrics.
    pub fn shutdown(mut self) -> WireMetrics {
        self.shared.shutdown_token().cancel();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Connection threads exit at their next idle poll; in-flight
        // requests finish first because workers are still running.
        let conns = std::mem::take(&mut *lock_or_recover(&self.conns));
        for c in conns {
            let _ = c.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        self.shared.metrics.snapshot()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.shutdown_token().cancel();
    }
}

/// Mutex recovery: connection-handle lists tolerate poisoning (the data
/// is only JoinHandles).
fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Binds, spawns the acceptor + pool, and returns immediately.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let metrics = Arc::new(Metrics::new());
    let registry = Arc::new(vqd_obs::Registry::new());
    // Building the cache may warm-restore a disk tier: index rebuilds
    // happen here, on the spawning thread, before any request runs.
    let cache =
        Arc::new(InstanceCache::new(config.caps.cache.clone(), Arc::clone(&registry)));
    let shared = Arc::new(Shared {
        master: Budget::unlimited(),
        caps: config.caps,
        metrics: Arc::clone(&metrics),
        registry: Arc::clone(&registry),
        cache: Arc::clone(&cache),
    });
    let ctx = EngineCtx {
        metrics: Arc::clone(&metrics),
        cache,
        registry,
        started: std::time::Instant::now(),
        shutdown: shared.shutdown_token(),
        debug_ops: shared.caps.enable_debug_ops,
    };
    let pool = Pool::new(config.workers, config.queue_depth, ctx);
    let queue = pool.queue_handle();
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("vqd-acceptor".to_owned())
            .spawn(move || accept_loop(&listener, &shared, &queue, &conns))?
    };
    Ok(ServerHandle { addr, shared, acceptor: Some(acceptor), conns, pool: Some(pool) })
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    queue: &QueueHandle,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let token = shared.shutdown_token();
    while !token.is_canceled() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                shared.metrics.connections_open.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                let queue = queue.clone();
                let spawned = std::thread::Builder::new()
                    .name("vqd-conn".to_owned())
                    .spawn(move || {
                        let _ = serve_connection(stream, &conn_shared, &queue);
                        conn_shared.metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
                    });
                match spawned {
                    Ok(handle) => {
                        let mut guard = lock_or_recover(conns);
                        // Reap finished connections so the list stays
                        // proportional to *open* connections.
                        guard.retain(|h| !h.is_finished());
                        guard.push(handle);
                    }
                    Err(_) => {
                        shared.metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Reads newline-delimited envelopes and answers each in order.
fn serve_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    queue: &QueueHandle,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // A finite read timeout turns the blocking read into a poll so the
    // thread can observe shutdown while idle.
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let token = shared.shutdown_token();
    let mut buf: Vec<u8> = Vec::new();
    // Slow-client guard: a connection may idle forever, but once it has
    // sent a *partial* request line the rest must arrive within
    // `caps.conn_read_timeout`, or it gets a typed `timeout` error and
    // the thread is reclaimed (slowloris protection).
    let mut partial_since: Option<std::time::Instant> = None;
    loop {
        if token.is_canceled() {
            return Ok(());
        }
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {
                if buf.last() != Some(&b'\n') {
                    // Partial line at EOF boundary: process it; the next
                    // read returns Ok(0).
                }
                partial_since = None;
                let line = String::from_utf8_lossy(&buf).into_owned();
                let response = handle_line(line.trim(), shared, queue);
                buf.clear();
                if let Some(response) = response {
                    writeln!(writer, "{}", response.to_json())?;
                    writer.flush()?;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                // Idle poll; partial bytes (if any) stay in `buf`.
                if buf.is_empty() {
                    partial_since = None;
                } else {
                    let since =
                        *partial_since.get_or_insert_with(std::time::Instant::now);
                    if since.elapsed() >= shared.caps.conn_read_timeout {
                        shared.registry.counter("server.conn_timeouts").inc();
                        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                        let response = Response::error(
                            "",
                            ErrorKind::Timeout,
                            format!(
                                "no complete request line within {}ms",
                                shared.caps.conn_read_timeout.as_millis()
                            ),
                        );
                        writeln!(writer, "{}", response.to_json())?;
                        writer.flush()?;
                        return Ok(());
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Decodes one line and produces one response (`None` for blank lines).
fn handle_line(line: &str, shared: &Arc<Shared>, queue: &QueueHandle) -> Option<Response> {
    if line.is_empty() {
        return None;
    }
    let envelope = match Envelope::from_line(line) {
        Err((kind, message, id)) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            return Some(Response::error(id, kind, message));
        }
        Ok(env) => env,
    };
    let id = envelope.id.clone();
    let budget = shared.clamp(&envelope.limits);
    let (reply_tx, reply_rx) = channel();
    let job = Job { envelope, budget, reply: reply_tx };
    match queue.submit(job) {
        Ok(()) => Some(reply_rx.recv().unwrap_or_else(|_| {
            Response::error(id, ErrorKind::Internal, "worker dropped the reply")
        })),
        Err((job, SubmitError::Full)) => {
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            Some(Response::new(
                job.envelope.id,
                Outcome::Overloaded {
                    queue_depth: shared.metrics.queue_depth.load(Ordering::Relaxed),
                    queue_capacity: queue.capacity() as u64,
                },
                WireStats::default(),
            ))
        }
        Err((job, SubmitError::Closed)) => {
            Some(Response::new(job.envelope.id, Outcome::ShuttingDown, WireStats::default()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_takes_the_stricter_side() {
        let shared = Shared {
            master: Budget::unlimited(),
            caps: ServerCaps {
                max_deadline: Duration::from_secs(2),
                max_steps: Some(1000),
                max_tuples: None,
                ..ServerCaps::default()
            },
            metrics: Arc::new(Metrics::new()),
            registry: Arc::new(vqd_obs::Registry::new()),
            cache: Arc::new(InstanceCache::new(
                CacheConfig::default(),
                Arc::new(vqd_obs::Registry::new()),
            )),
        };
        // Client asks for more than the cap: cap wins.
        let b = shared.clamp(&Limits {
            deadline_ms: Some(60_000),
            step_limit: Some(1_000_000),
            tuple_limit: None,
        });
        assert!(b.remaining_time().is_some_and(|t| t <= Duration::from_secs(2)));
        assert_eq!(b.remaining_steps(), Some(1000));
        // Client asks for less: client wins.
        let b = shared.clamp(&Limits {
            deadline_ms: Some(5),
            step_limit: Some(10),
            tuple_limit: Some(3),
        });
        assert!(b.remaining_time().is_some_and(|t| t <= Duration::from_millis(5)));
        assert_eq!(b.remaining_steps(), Some(10));
        assert_eq!(b.remaining_tuples(), Some(3));
        // Shutdown authority: tripping the master token cancels clamped
        // budgets.
        shared.shutdown_token().cancel();
        let b = shared.clamp(&Limits::none());
        assert!(b.checkpoint().is_err());
    }
}
