//! The TCP service: a readiness-driven connection layer over the
//! bounded worker pool.
//!
//! Threading model (all `std`; readiness comes from the [`netpoll`]
//! shim over `poll(2)`):
//!
//! * a small fixed set of **I/O event loops** (`caps.io_threads`)
//!   multiplexes *all* connections over non-blocking sockets — loop 0
//!   also owns the listener and distributes accepted connections
//!   round-robin; an idle connection costs a poll-set entry, not a
//!   thread, and consumes zero CPU between readiness events;
//! * `workers` **worker** threads execute requests under clamped
//!   budgets (see [`Pool`]) and hand completions back to the owning
//!   loop through a callback + waker (see [`ReplyTo`]).
//!
//! **Pipelining, in order.** A client may write any number of request
//! lines before reading replies. Each parsed line gets a per-connection
//! sequence number; completions may arrive out of order (jobs run on
//! whichever worker frees up first) and are reordered in a per-
//! connection [`BTreeMap`] so replies always leave in request order.
//! Per-request `profile`/`trace` attribution is untouched by
//! pipelining: workers still serve one job at a time, so the
//! thread-local counter diff in the pool stays exact.
//!
//! **Backpressure, two tiers, both structured.** More than
//! `caps.max_inflight_per_conn` outstanding requests on one connection,
//! or a full worker queue, degrade to `overloaded` replies; more than
//! `caps.max_conns` open connections degrade to an `overloaded` reply
//! on the excess connection followed by a clean close. A reader too
//! slow to drain its replies trips the bounded per-connection write
//! queue (`caps.max_writeq_bytes`): queued output is dropped, a typed
//! `timeout` error is sent, and the connection closes —
//! `server.conn_timeouts` counts it, exactly like the slowloris
//! partial-line guard (`caps.conn_read_timeout`), which also survives
//! unchanged.
//!
//! Per-request budgets are `min(client-requested limits, server caps)`
//! via [`Budget::min_of`], and every budget observes the server's
//! shutdown [`CancelToken`]: [`ServerHandle::shutdown`] (or a wire
//! [`Request::Shutdown`](crate::proto::Request::Shutdown)) trips the
//! token; loops stop accepting and reading, keep delivering in-flight
//! replies — which degrade to structured `exhausted (canceled)` with
//! partial progress — flush, then exit before the pool drains.

use crate::cache::{CacheConfig, InstanceCache};
use crate::engine::EngineCtx;
use crate::metrics::Metrics;
use crate::netpoll::{self, PollFd, WakeRx, Waker, POLLCLOSED, POLLIN, POLLOUT};
use crate::pool::{Job, PhaseStamps, Pool, QueueHandle, ReplyTo, SubmitError};
use crate::proto::{
    Envelope, ErrorKind, Limits, Outcome, Response, Timeline, WireMetrics, WireStats,
};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vqd_budget::{Budget, CancelToken};

/// How long a draining loop waits for in-flight replies before closing
/// connections anyway. Canceled budgets trip at their next checkpoint,
/// so a drain normally completes in milliseconds; this is the backstop.
const DRAIN_GRACE: Duration = Duration::from_secs(30);

/// Read granularity of the event loop (per `read(2)` call).
const READ_CHUNK: usize = 16 * 1024;

/// Server-side resource caps applied to *every* request, whatever the
/// client asked for.
#[derive(Clone, Debug)]
pub struct ServerCaps {
    /// Hard wall-clock cap per request.
    pub max_deadline: Duration,
    /// Hard step cap per request (`None` = deadline-only).
    pub max_steps: Option<u64>,
    /// Hard tuple cap per request (`None` = deadline-only).
    pub max_tuples: Option<u64>,
    /// Cross-request instance cache sizing. Lives here (not in
    /// [`ServerConfig`]) so existing `ServerConfig` literals written
    /// against v1 keep compiling via `ServerCaps::default()`.
    pub cache: CacheConfig,
    /// Slow-client guard: how long a connection may sit on a *partial*
    /// request line before it is answered with a typed `timeout` error
    /// and dropped. Idle connections (no partial line) are unaffected.
    /// Doubles as the flush grace for a closing connection.
    pub conn_read_timeout: Duration,
    /// Enables the `debug_panic` op (worker-panic containment tests
    /// only). Off by default: production servers reply `unsupported`.
    pub enable_debug_ops: bool,
    /// I/O event-loop threads multiplexing all connections (minimum 1).
    pub io_threads: usize,
    /// Global open-connection limit: connections past it get a typed
    /// `overloaded` reply and a clean close at accept time.
    pub max_conns: usize,
    /// Pipelining cap: outstanding requests beyond this on a single
    /// connection get immediate `overloaded` replies (still delivered
    /// in request order).
    pub max_inflight_per_conn: usize,
    /// Bounded per-connection write queue: a reader that lets more than
    /// this many reply bytes pile up server-side gets a typed `timeout`
    /// and a close (`server.conn_timeouts` counts it).
    pub max_writeq_bytes: usize,
    /// Optional kernel send-buffer cap applied to accepted sockets.
    /// Bounding it makes slow-reader backpressure deterministic (tests);
    /// `None` leaves kernel autotuning alone.
    pub sock_sndbuf: Option<usize>,
    /// Slow-request log threshold: a request whose end-to-end latency
    /// (frame-complete to write-drained) reaches this many milliseconds
    /// is logged to stderr with its full phase breakdown. `None` (the
    /// default) disables the log.
    pub slow_log_ms: Option<u64>,
    /// Engine-pool size for intra-request parallelism (`vqd-cli serve
    /// --engine-threads`). Every envelope's requested `parallelism` is
    /// clamped to this; the default of 1 keeps every request exactly
    /// sequential. The pool is distinct from the worker pool: workers
    /// stay one-job-at-a-time, shards of one job fan out here.
    pub engine_threads: usize,
}

impl Default for ServerCaps {
    fn default() -> ServerCaps {
        ServerCaps {
            max_deadline: Duration::from_secs(10),
            max_steps: None,
            max_tuples: None,
            cache: CacheConfig::default(),
            conn_read_timeout: Duration::from_secs(10),
            enable_debug_ops: false,
            io_threads: 2,
            max_conns: 4096,
            max_inflight_per_conn: 64,
            max_writeq_bytes: 1 << 20,
            sock_sndbuf: None,
            slow_log_ms: None,
            engine_threads: 1,
        }
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are rejected with
    /// `overloaded`.
    pub queue_depth: usize,
    /// Per-request resource caps.
    pub caps: ServerCaps,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            caps: ServerCaps::default(),
        }
    }
}

/// State shared by the event loops and workers.
struct Shared {
    /// Master budget: its cancel token *is* the shutdown signal; its
    /// counters are never advanced (per-request budgets are fresh).
    master: Budget,
    caps: ServerCaps,
    metrics: Arc<Metrics>,
    registry: Arc<vqd_obs::Registry>,
    /// The instance cache, shared with the worker pool's [`EngineCtx`]
    /// so tests and the loadgen restart phase can reach the disk tier
    /// (fault arming, segment paths) on a live server.
    cache: Arc<InstanceCache>,
    /// One waker per event loop; shutdown pokes them all so a loop
    /// parked in an indefinite `poll` observes the canceled token.
    wakers: Vec<Waker>,
    /// Total reply bytes queued (application-side) across every
    /// connection; mirrored into the `server.writeq_bytes` gauge.
    writeq_bytes: AtomicU64,
    g_conns_open: Arc<vqd_obs::Gauge>,
    g_pipelined: Arc<vqd_obs::Gauge>,
    g_writeq: Arc<vqd_obs::Gauge>,
    /// Per-phase latency histograms observed for *every* loop-served
    /// request (profiled or not): frame/queue/exec/reorder at reply
    /// serialization, write + end-to-end at kernel drain.
    h_frame: Arc<vqd_obs::Histogram>,
    h_queue: Arc<vqd_obs::Histogram>,
    h_exec: Arc<vqd_obs::Histogram>,
    h_reorder: Arc<vqd_obs::Histogram>,
    h_write: Arc<vqd_obs::Histogram>,
    h_e2e: Arc<vqd_obs::Histogram>,
}

impl Shared {
    fn new(
        caps: ServerCaps,
        metrics: Arc<Metrics>,
        registry: Arc<vqd_obs::Registry>,
        cache: Arc<InstanceCache>,
        wakers: Vec<Waker>,
    ) -> Shared {
        let g_conns_open = registry.gauge("server.conns_open");
        let g_pipelined = registry.gauge("server.pipelined_depth");
        let g_writeq = registry.gauge("server.writeq_bytes");
        let bounds = &vqd_obs::LATENCY_BOUNDS_MS;
        let h_frame = registry.histogram("server.phase.frame_ms", bounds);
        let h_queue = registry.histogram("server.phase.queue_ms", bounds);
        let h_exec = registry.histogram("server.phase.exec_ms", bounds);
        let h_reorder = registry.histogram("server.phase.reorder_ms", bounds);
        let h_write = registry.histogram("server.phase.write_ms", bounds);
        let h_e2e = registry.histogram("server.e2e_ms", bounds);
        Shared {
            master: Budget::unlimited(),
            caps,
            metrics,
            registry,
            cache,
            wakers,
            writeq_bytes: AtomicU64::new(0),
            g_conns_open,
            g_pipelined,
            g_writeq,
            h_frame,
            h_queue,
            h_exec,
            h_reorder,
            h_write,
            h_e2e,
        }
    }

    /// `min(client limits, server caps)` with the shutdown token wired
    /// in as cancellation authority.
    fn clamp(&self, limits: &Limits) -> Budget {
        let mut cap = self.master.clone().with_deadline(self.caps.max_deadline);
        if let Some(s) = self.caps.max_steps {
            cap = cap.with_step_limit(s);
        }
        if let Some(t) = self.caps.max_tuples {
            cap = cap.with_tuple_limit(t);
        }
        Budget::min_of(&cap, &limits.to_budget())
    }

    fn shutdown_token(&self) -> CancelToken {
        self.master.cancel_token()
    }

    /// Folds a connection's write-queue length change into the global
    /// total and its gauge.
    fn writeq_delta(&self, before: usize, after: usize) {
        if after == before {
            return;
        }
        if after > before {
            self.writeq_bytes.fetch_add((after - before) as u64, Ordering::Relaxed);
        } else {
            self.writeq_bytes.fetch_sub((before - after) as u64, Ordering::Relaxed);
        }
        self.g_writeq.set(self.writeq_bytes.load(Ordering::Relaxed));
    }
}

/// A running server. Dropping the handle trips the shutdown token but
/// does not block; call [`ServerHandle::shutdown`] for an orderly drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    loops: Vec<JoinHandle<()>>,
    pool: Option<Pool>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time metrics.
    pub fn metrics(&self) -> WireMetrics {
        self.shared.metrics.snapshot()
    }

    /// The server-wide observability registry (per-op counters, latency
    /// histograms, folded engine counters, connection gauges).
    pub fn registry(&self) -> Arc<vqd_obs::Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// The shutdown token (share it with supervisors/signal handlers).
    pub fn shutdown_token(&self) -> CancelToken {
        self.shared.shutdown_token()
    }

    /// The live instance cache (tests arm disk faults through it).
    pub fn cache(&self) -> Arc<InstanceCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Whether a shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown_token().is_canceled()
    }

    /// Blocks until a shutdown is requested (e.g. a wire `shutdown`
    /// request), then drains and returns the final metrics.
    pub fn wait(self) -> WireMetrics {
        while !self.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.shutdown()
    }

    /// Graceful shutdown: trip the token, wake every event loop, let
    /// them deliver in-flight replies (canceled budgets report partial
    /// progress) and flush, join them, then drain the pool and report
    /// the final metrics.
    pub fn shutdown(mut self) -> WireMetrics {
        self.shared.shutdown_token().cancel();
        for w in &self.shared.wakers {
            w.wake();
        }
        // Joining the loops first drops their queue handles, which is
        // what lets the pool's workers observe a closed queue and exit.
        for h in self.loops.drain(..) {
            let _ = h.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        self.shared.metrics.snapshot()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.shutdown_token().cancel();
        for w in &self.shared.wakers {
            w.wake();
        }
    }
}

/// Binds, spawns the event loops + pool, and returns immediately.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let metrics = Arc::new(Metrics::new());
    let registry = Arc::new(vqd_obs::Registry::new());
    // Building the cache may warm-restore a disk tier: index rebuilds
    // happen here, on the spawning thread, before any request runs.
    let cache =
        Arc::new(InstanceCache::new(config.caps.cache.clone(), Arc::clone(&registry)));
    let io_threads = config.caps.io_threads.max(1);
    let mut wakers = Vec::with_capacity(io_threads);
    let mut wake_rxs = Vec::with_capacity(io_threads);
    for _ in 0..io_threads {
        let (w, rx) = netpoll::waker_pair()?;
        wakers.push(w);
        wake_rxs.push(rx);
    }
    let shared = Arc::new(Shared::new(
        config.caps,
        Arc::clone(&metrics),
        Arc::clone(&registry),
        Arc::clone(&cache),
        wakers,
    ));
    let ctx = EngineCtx {
        metrics,
        cache,
        registry,
        started: Instant::now(),
        shutdown: shared.shutdown_token(),
        debug_ops: shared.caps.enable_debug_ops,
        // The server owns its engine pool (sized by --engine-threads)
        // rather than borrowing the process-global one, so the pool's
        // thread count *is* the parallelism cap applied per request.
        exec: Arc::new(vqd_exec::ExecPool::new(shared.caps.engine_threads.max(1))),
    };
    let pool = Pool::new(config.workers, config.queue_depth, ctx);
    let mut handles = Vec::with_capacity(io_threads);
    let mut rxs = Vec::with_capacity(io_threads);
    for waker in &shared.wakers {
        let (tx, rx) = channel();
        handles.push(LoopHandle { tx, waker: waker.clone() });
        rxs.push(rx);
    }
    let handles = Arc::new(handles);
    let mut listener = Some(listener);
    let mut loops = Vec::with_capacity(io_threads);
    for (idx, (rx, wake_rx)) in rxs.into_iter().zip(wake_rxs).enumerate() {
        let io_loop = IoLoop {
            idx,
            shared: Arc::clone(&shared),
            queue: pool.queue_handle(),
            rx,
            wake_rx,
            // Loop 0 owns the listener: accepts are just another
            // readiness event, with no dedicated acceptor thread.
            listener: listener.take(),
            loops: Arc::clone(&handles),
            conns: BTreeMap::new(),
            next_conn_id: idx as u64,
            next_rr: idx,
            draining: false,
            drain_deadline: None,
        };
        loops.push(
            std::thread::Builder::new()
                .name(format!("vqd-io-{idx}"))
                .spawn(move || io_loop.run())?,
        );
    }
    Ok(ServerHandle { addr, shared, loops, pool: Some(pool) })
}

/// Messages into an event loop's mailbox; every send is paired with a
/// waker poke so a parked loop notices.
enum LoopMsg {
    /// A freshly accepted connection, dispatched round-robin by loop 0.
    Conn(TcpStream),
    /// A finished job for `(connection, sequence)`; the loop reorders
    /// these so replies leave in request order.
    Done { conn: u64, seq: u64, response: Box<Response> },
}

/// The sending side of one loop's mailbox.
#[derive(Clone)]
struct LoopHandle {
    tx: Sender<LoopMsg>,
    waker: Waker,
}

impl LoopHandle {
    /// Delivers a message and wakes the loop; `false` (message dropped)
    /// only once the loop has exited during shutdown.
    fn send(&self, msg: LoopMsg) -> bool {
        if self.tx.send(msg).is_err() {
            return false;
        }
        self.waker.wake();
        true
    }
}

/// A serialized reply awaiting its kernel drain, identified by the
/// cumulative byte offset its last byte occupies in the connection's
/// write stream. When `flush_writes` advances `Conn::write_base` past
/// `end`, the reply has fully left the process: that instant closes the
/// write phase (`server.phase.write_ms`), the end-to-end histogram
/// (`server.e2e_ms`), and — past `ServerCaps::slow_log_ms` — feeds the
/// slow-request log.
struct ReplyMark {
    /// Cumulative stream offset one past this reply's final byte.
    end: u64,
    /// Correlation id, for the slow-request log line.
    id: String,
    /// When `deliver` serialized the reply (closes the reorder phase,
    /// opens the write phase).
    released: Instant,
    /// The finalized phase timeline (reorder filled, write still open).
    timeline: Timeline,
}

/// Per-connection state owned by exactly one event loop.
struct Conn {
    id: u64,
    stream: TcpStream,
    /// Bytes read but not yet framed into a complete line.
    read_buf: Vec<u8>,
    /// Serialized replies not yet accepted by the kernel.
    write_buf: Vec<u8>,
    /// Cumulative bytes drained to the kernel over this connection's
    /// lifetime; `write_base + write_buf.len()` is the stream offset of
    /// the next serialized byte.
    write_base: u64,
    /// Worker-served replies sitting in `write_buf`, oldest first,
    /// waiting for their drain instant.
    write_marks: VecDeque<ReplyMark>,
    /// Sequence number the next parsed request will get.
    next_seq: u64,
    /// Sequence number whose reply is next in line to be serialized.
    next_to_send: u64,
    /// Completed replies waiting for an earlier sequence to finish.
    pending: BTreeMap<u64, Response>,
    /// Jobs submitted to the pool whose completion has not come back.
    in_flight: usize,
    /// When the oldest *partial* request line started waiting.
    partial_since: Option<Instant>,
    /// No more reads; close once everything owed has been flushed (or
    /// the deadline passes).
    closing: bool,
    /// Kill-path variant of `closing`: completions for this connection
    /// are dropped instead of delivered (its reply queue was already
    /// replaced by a terminal error line).
    discard: bool,
    /// Hard bound on how long a closing connection may linger.
    close_deadline: Option<Instant>,
    /// Remove this connection at the end of the current event.
    dead: bool,
}

impl Conn {
    fn new(id: u64, stream: TcpStream) -> Conn {
        Conn {
            id,
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_base: 0,
            write_marks: VecDeque::new(),
            next_seq: 0,
            next_to_send: 0,
            pending: BTreeMap::new(),
            in_flight: 0,
            partial_since: None,
            closing: false,
            discard: false,
            close_deadline: None,
            dead: false,
        }
    }
}

/// One I/O event loop: polls its connections (and, on loop 0, the
/// listener), frames lines, submits jobs, reorders completions, and
/// flushes replies.
struct IoLoop {
    idx: usize,
    shared: Arc<Shared>,
    queue: QueueHandle,
    rx: Receiver<LoopMsg>,
    wake_rx: WakeRx,
    listener: Option<TcpListener>,
    loops: Arc<Vec<LoopHandle>>,
    conns: BTreeMap<u64, Conn>,
    /// Next connection id; strided by the loop count so ids are
    /// globally unique without coordination.
    next_conn_id: u64,
    next_rr: usize,
    draining: bool,
    drain_deadline: Option<Instant>,
}

impl IoLoop {
    fn run(mut self) {
        let token = self.shared.shutdown_token();
        loop {
            if token.is_canceled() && !self.draining {
                self.enter_drain();
            }
            if self.draining && self.reap_drained() {
                return;
            }
            // Poll set: waker, then (loop 0 only) the listener, then one
            // entry per connection. Rebuilt every iteration —
            // level-triggered poll makes that correct by construction.
            let mut fds = Vec::with_capacity(2 + self.conns.len());
            fds.push(PollFd::new(self.wake_rx.fd(), POLLIN));
            let listener_slot = self.listener.as_ref().map(|l| {
                fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
                fds.len() - 1
            });
            let base = fds.len();
            let mut ids = Vec::with_capacity(self.conns.len());
            for (id, c) in &self.conns {
                let mut events = 0i16;
                if !c.closing && !self.draining {
                    events |= POLLIN;
                }
                if !c.write_buf.is_empty() {
                    events |= POLLOUT;
                }
                // events may stay 0: POLLERR/POLLHUP still come back.
                fds.push(PollFd::new(c.stream.as_raw_fd(), events));
                ids.push(*id);
            }
            let _ = netpoll::wait(&mut fds, self.poll_timeout());
            if fds[0].revents != 0 {
                self.wake_rx.drain();
            }
            self.drain_mailbox();
            if let Some(slot) = listener_slot {
                if fds[slot].returned(POLLIN) {
                    self.accept_ready();
                }
            }
            for (k, id) in ids.iter().enumerate() {
                let revents = fds[base + k].revents;
                if revents != 0 {
                    self.conn_ready(*id, revents);
                }
            }
            self.check_deadlines();
        }
    }

    /// Switches to draining: no more accepts, no more reads; in-flight
    /// replies are still delivered and flushed. Wakes every sibling so
    /// loops parked in an indefinite poll observe the token too (a wire
    /// `shutdown` cancels it from a worker thread, which only wakes the
    /// loop owning that connection).
    fn enter_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
        self.listener = None;
        for h in self.loops.iter() {
            h.waker.wake();
        }
    }

    /// Closes connections with nothing left to deliver; returns true
    /// once none remain (the loop may exit).
    fn reap_drained(&mut self) -> bool {
        let past_grace = self.drain_deadline.is_some_and(|d| Instant::now() >= d);
        let finished: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| past_grace || (c.in_flight == 0 && c.write_buf.is_empty()))
            .map(|(id, _)| *id)
            .collect();
        for id in finished {
            if let Some(conn) = self.conns.remove(&id) {
                self.destroy(conn);
            }
        }
        self.conns.is_empty()
    }

    /// The next poll either sleeps indefinitely (nothing timed pending —
    /// the idle-cost-zero case) or until the earliest deadline.
    fn poll_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        let read_timeout = self.shared.caps.conn_read_timeout;
        let mut next: Option<Instant> = None;
        let fold = |t: Instant, next: &mut Option<Instant>| match *next {
            Some(n) if n <= t => {}
            _ => *next = Some(t),
        };
        for c in self.conns.values() {
            if let Some(s) = c.partial_since {
                fold(s + read_timeout, &mut next);
            }
            if let Some(d) = c.close_deadline {
                fold(d, &mut next);
            }
        }
        if self.draining {
            fold(now + Duration::from_millis(50), &mut next);
        }
        next.map(|t| t.saturating_duration_since(now))
    }

    /// Drains the mailbox: adopts dispatched connections, applies
    /// completions (decrement in-flight, reorder, flush).
    fn drain_mailbox(&mut self) {
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                LoopMsg::Conn(stream) => {
                    if self.draining {
                        self.shared.metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
                        drop(stream);
                    } else {
                        self.register(stream);
                    }
                }
                LoopMsg::Done { conn: id, seq, response } => {
                    // The connection may have closed while its job ran;
                    // the completion is simply dropped then.
                    let Some(mut conn) = self.conns.remove(&id) else { continue };
                    conn.in_flight = conn.in_flight.saturating_sub(1);
                    if conn.discard {
                        // Killed connection: the completion is dropped;
                        // re-flush only to re-check the close condition.
                        flush_writes(&mut conn, &self.shared);
                    } else {
                        self.deliver(&mut conn, seq, *response);
                    }
                    self.reinsert(id, conn);
                }
            }
        }
    }

    /// Accepts until the listener would block. The global connection
    /// limit is enforced here — past it, the excess connection gets a
    /// typed `overloaded` reply and a clean close, not a thread and not
    /// an unbounded backlog.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else { return };
            match listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        let m = &self.shared.metrics;
        m.connections_total.fetch_add(1, Ordering::Relaxed);
        let open = m.connections_open.fetch_add(1, Ordering::Relaxed) + 1;
        if open as usize > self.shared.caps.max_conns {
            m.connections_open.fetch_sub(1, Ordering::Relaxed);
            self.shared.registry.counter("server.conns_rejected").inc();
            reject_over_limit(stream, open - 1, self.shared.caps.max_conns);
            return;
        }
        self.shared.g_conns_open.set(open);
        let target = self.next_rr % self.loops.len();
        self.next_rr = self.next_rr.wrapping_add(1);
        if target == self.idx {
            self.register(stream);
        } else if !self.loops[target].send(LoopMsg::Conn(stream)) {
            // Only possible once the target loop exited mid-shutdown.
            m.connections_open.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Takes ownership of a connection: non-blocking, nodelay, and an
    /// id strided so every loop mints distinct ones.
    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            self.shared.metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        stream.set_nodelay(true).ok();
        if let Some(bytes) = self.shared.caps.sock_sndbuf {
            let _ = netpoll::set_send_buffer(&stream, bytes);
        }
        let id = self.next_conn_id;
        self.next_conn_id += self.loops.len() as u64;
        self.conns.insert(id, Conn::new(id, stream));
    }

    fn reinsert(&mut self, id: u64, conn: Conn) {
        if conn.dead {
            self.destroy(conn);
        } else {
            self.conns.insert(id, conn);
        }
    }

    fn destroy(&mut self, conn: Conn) {
        let open =
            self.shared.metrics.connections_open.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
        self.shared.g_conns_open.set(open);
        // Undeliverable queued output leaves the global gauge with it.
        self.shared.writeq_delta(conn.write_buf.len(), 0);
    }

    /// Dispatches one connection's returned events.
    fn conn_ready(&mut self, id: u64, revents: i16) {
        let Some(mut conn) = self.conns.remove(&id) else { return };
        if revents & POLLIN != 0 && !conn.closing && !self.draining {
            self.read_ready(&mut conn);
        }
        if revents & POLLOUT != 0 && !conn.dead {
            flush_writes(&mut conn, &self.shared);
        }
        if revents & POLLCLOSED != 0 && revents & POLLIN == 0 {
            // Hangup/error with nothing readable: the peer is gone.
            conn.dead = true;
        }
        self.reinsert(id, conn);
    }

    /// Reads until the socket would block, frames complete lines, and
    /// processes each. EOF with work still pending half-closes: replies
    /// are delivered before the connection is dropped.
    fn read_ready(&mut self, conn: &mut Conn) {
        let mut chunk = [0u8; READ_CHUNK];
        let mut eof = false;
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        self.process_lines(conn);
        if eof && !conn.dead {
            if !conn.read_buf.is_empty() && !conn.closing {
                // A final unterminated line still gets an answer (the
                // blocking server answered these too).
                let tail: Vec<u8> = std::mem::take(&mut conn.read_buf);
                self.process_one_line(conn, &tail);
                conn.partial_since = None;
            }
            if conn.in_flight == 0 && conn.write_buf.is_empty() {
                conn.dead = true;
            } else {
                conn.closing = true;
                if conn.close_deadline.is_none() {
                    conn.close_deadline =
                        Some(Instant::now() + self.shared.caps.conn_read_timeout);
                }
            }
        }
    }

    /// Splits `read_buf` at newlines; whatever remains is a partial
    /// line and starts (or continues) the slow-client clock.
    fn process_lines(&mut self, conn: &mut Conn) {
        loop {
            if conn.closing {
                conn.read_buf.clear();
                break;
            }
            let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') else { break };
            let line: Vec<u8> = conn.read_buf.drain(..=pos).collect();
            self.process_one_line(conn, &line);
        }
        conn.partial_since = if conn.read_buf.is_empty() {
            None
        } else {
            Some(conn.partial_since.unwrap_or_else(Instant::now))
        };
    }

    /// Frames one request: assign a sequence number, decode, apply the
    /// per-connection in-flight cap, clamp the budget, and submit — or
    /// answer immediately (decode errors, backpressure). Immediate
    /// answers go through the same reorder buffer, so replies always
    /// leave in request order even when request 5 fails fast while
    /// request 2 is still on a worker.
    fn process_one_line(&mut self, conn: &mut Conn, raw: &[u8]) {
        // Phase stamp 1 of 6 (frame-complete): a full request line is in
        // hand; decode + admission happen between here and enqueue.
        let framed = Instant::now();
        let text = String::from_utf8_lossy(raw);
        let line = text.trim();
        if line.is_empty() {
            return;
        }
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let envelope = match Envelope::from_line(line) {
            Err((kind, message, id)) => {
                self.shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                self.deliver(conn, seq, Response::error(id, kind, message));
                return;
            }
            Ok(env) => env,
        };
        if conn.in_flight >= self.shared.caps.max_inflight_per_conn {
            self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            self.shared.registry.counter("server.inflight_rejects").inc();
            let response = Response::new(
                envelope.id,
                Outcome::Overloaded {
                    queue_depth: conn.in_flight as u64,
                    queue_capacity: self.shared.caps.max_inflight_per_conn as u64,
                },
                WireStats::default(),
            );
            self.deliver(conn, seq, response);
            return;
        }
        let budget = self.shared.clamp(&envelope.limits);
        let home = self.loops[self.idx].clone();
        let conn_id = conn.id;
        let reply = ReplyTo::Callback(Box::new(move |response| {
            home.send(LoopMsg::Done { conn: conn_id, seq, response: Box::new(response) });
        }));
        // Phase stamp 2 of 6 (admission-enqueue); stamps 3–4 land in the
        // pool worker, 5–6 back here in `deliver`/`flush_writes`.
        let stamps = Some(PhaseStamps { framed, enqueued: Instant::now() });
        match self.queue.submit(Job { envelope, budget, reply, stamps }) {
            Ok(()) => {
                conn.in_flight += 1;
                self.shared.g_pipelined.raise_to(conn.in_flight as u64);
            }
            Err((job, SubmitError::Full)) => {
                self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                let response = Response::new(
                    job.envelope.id,
                    Outcome::Overloaded {
                        queue_depth: self.shared.metrics.queue_depth.load(Ordering::Relaxed),
                        queue_capacity: self.queue.capacity() as u64,
                    },
                    WireStats::default(),
                );
                self.deliver(conn, seq, response);
            }
            Err((job, SubmitError::Closed)) => {
                let response =
                    Response::new(job.envelope.id, Outcome::ShuttingDown, WireStats::default());
                self.deliver(conn, seq, response);
            }
        }
    }

    /// The ordered-pipelining invariant lives here: a completion parks
    /// in `pending` until every earlier sequence has been serialized,
    /// then as many consecutive replies as are ready are appended to the
    /// write queue and flushed.
    fn deliver(&mut self, conn: &mut Conn, seq: u64, response: Response) {
        conn.pending.insert(seq, response);
        let before = conn.write_buf.len();
        while let Some(mut r) = conn.pending.remove(&conn.next_to_send) {
            // Phase stamp 5 of 6 (reorder-release): the reply is next in
            // line and is serialized now. Close the reorder phase,
            // observe the worker-side phases for every request (the wire
            // timeline stays profiled-only), and leave a mark so the
            // kernel drain can close write/e2e.
            let released = Instant::now();
            let mut mark = None;
            if let Some(tl) = r.timeline.as_mut() {
                if let Some(finished) = tl.finished {
                    tl.reorder_us = released.duration_since(finished).as_micros() as u64;
                }
                self.shared.h_frame.observe(tl.frame_us / 1000);
                self.shared.h_queue.observe(tl.queue_us / 1000);
                self.shared.h_exec.observe(tl.exec_us / 1000);
                self.shared.h_reorder.observe(tl.reorder_us / 1000);
                if tl.framed.is_some() {
                    mark = Some((r.id.clone(), *tl));
                }
            }
            if r.profile.is_none() {
                r.timeline = None;
            }
            let line = r.to_json().to_string();
            conn.write_buf.extend_from_slice(line.as_bytes());
            conn.write_buf.push(b'\n');
            if let Some((id, timeline)) = mark {
                conn.write_marks.push_back(ReplyMark {
                    end: conn.write_base + conn.write_buf.len() as u64,
                    id,
                    released,
                    timeline,
                });
            }
            conn.next_to_send += 1;
        }
        self.shared.writeq_delta(before, conn.write_buf.len());
        flush_writes(conn, &self.shared);
        self.enforce_writeq_bound(conn);
    }

    /// The slow-reader tier: a connection whose un-flushed replies
    /// exceed the cap loses its queued output, gets one typed `timeout`
    /// line, and closes — counted by `server.conn_timeouts` like every
    /// other deadline kill.
    fn enforce_writeq_bound(&mut self, conn: &mut Conn) {
        let cap = self.shared.caps.max_writeq_bytes;
        if conn.closing || conn.dead || conn.write_buf.len() <= cap {
            return;
        }
        self.shared.registry.counter("server.conn_timeouts").inc();
        self.shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        let before = conn.write_buf.len();
        conn.write_buf.clear();
        conn.write_marks.clear();
        conn.pending.clear();
        let response = Response::error(
            "",
            ErrorKind::Timeout,
            format!("reply backlog exceeded {cap} bytes: reader too slow"),
        );
        let line = response.to_json().to_string();
        conn.write_buf.extend_from_slice(line.as_bytes());
        conn.write_buf.push(b'\n');
        self.shared.writeq_delta(before, conn.write_buf.len());
        conn.closing = true;
        conn.discard = true;
        conn.close_deadline = Some(Instant::now() + self.shared.caps.conn_read_timeout);
        flush_writes(conn, &self.shared);
    }

    /// Applies the two per-connection clocks: the slowloris partial-line
    /// deadline (typed `timeout`, then close) and the closing-flush
    /// grace (hard close).
    fn check_deadlines(&mut self) {
        let now = Instant::now();
        let read_timeout = self.shared.caps.conn_read_timeout;
        let mut timed_out: Vec<u64> = Vec::new();
        let mut expired: Vec<u64> = Vec::new();
        for (id, c) in &self.conns {
            if c.closing {
                if c.close_deadline.is_some_and(|d| now >= d) {
                    expired.push(*id);
                }
            } else if c.partial_since.is_some_and(|s| now.duration_since(s) >= read_timeout) {
                timed_out.push(*id);
            }
        }
        for id in expired {
            if let Some(conn) = self.conns.remove(&id) {
                self.destroy(conn);
            }
        }
        for id in timed_out {
            let Some(mut conn) = self.conns.remove(&id) else { continue };
            self.shared.registry.counter("server.conn_timeouts").inc();
            self.shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            let seq = conn.next_seq;
            conn.next_seq += 1;
            let response = Response::error(
                "",
                ErrorKind::Timeout,
                format!("no complete request line within {}ms", read_timeout.as_millis()),
            );
            self.deliver(&mut conn, seq, response);
            conn.partial_since = None;
            conn.closing = true;
            conn.discard = true;
            conn.close_deadline = Some(now + read_timeout);
            // The timeout line may already be fully flushed; re-check
            // the close condition now that the flags are set.
            flush_writes(&mut conn, &self.shared);
            self.reinsert(id, conn);
        }
    }
}

/// Writes until the kernel would block. A closing connection whose
/// queue fully drains is marked dead (flush-then-close complete).
fn flush_writes(conn: &mut Conn, shared: &Shared) {
    let before = conn.write_buf.len();
    let mut written = 0usize;
    while written < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[written..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if written > 0 {
        conn.write_buf.drain(..written);
        conn.write_base += written as u64;
        // Phase stamp 6 of 6 (write-drained) for every reply whose last
        // byte the kernel just accepted: close the write phase and the
        // end-to-end clock, and apply the slow-request threshold.
        let drained = Instant::now();
        while conn.write_marks.front().is_some_and(|m| m.end <= conn.write_base) {
            let Some(m) = conn.write_marks.pop_front() else { break };
            let write_us = drained.duration_since(m.released).as_micros() as u64;
            shared.h_write.observe(write_us / 1000);
            let Some(framed) = m.timeline.framed else { continue };
            let e2e_ms = drained.duration_since(framed).as_millis() as u64;
            shared.h_e2e.observe(e2e_ms);
            if shared.caps.slow_log_ms.is_some_and(|t| e2e_ms >= t) {
                eprintln!(
                    "slow-request id={:?} e2e_ms={} frame_us={} queue_us={} exec_us={} \
                     reorder_us={} write_us={}",
                    m.id,
                    e2e_ms,
                    m.timeline.frame_us,
                    m.timeline.queue_us,
                    m.timeline.exec_us,
                    m.timeline.reorder_us,
                    write_us,
                );
            }
        }
    }
    shared.writeq_delta(before, conn.write_buf.len());
    // A closing connection ends once nothing is owed: its queue is
    // flushed and — unless it was killed, in which case completions are
    // being discarded — its in-flight requests have all been answered.
    if conn.closing && conn.write_buf.is_empty() && (conn.discard || conn.in_flight == 0) {
        conn.dead = true;
    }
}

/// The global-limit rejection: one best-effort `overloaded` line, then
/// the drop closes the socket. The socket's buffer is empty, so the
/// single non-blocking write virtually always lands.
fn reject_over_limit(stream: TcpStream, open: u64, cap: usize) {
    let _ = stream.set_nonblocking(true);
    let response = Response::new(
        "",
        Outcome::Overloaded { queue_depth: open, queue_capacity: cap as u64 },
        WireStats::default(),
    );
    let mut line = response.to_json().to_string();
    line.push('\n');
    let mut stream = stream;
    let _ = stream.write(line.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shared(caps: ServerCaps) -> Shared {
        let registry = Arc::new(vqd_obs::Registry::new());
        Shared::new(
            caps,
            Arc::new(Metrics::new()),
            Arc::clone(&registry),
            Arc::new(InstanceCache::new(CacheConfig::default(), registry)),
            Vec::new(),
        )
    }

    #[test]
    fn clamp_takes_the_stricter_side() {
        let shared = test_shared(ServerCaps {
            max_deadline: Duration::from_secs(2),
            max_steps: Some(1000),
            max_tuples: None,
            ..ServerCaps::default()
        });
        // Client asks for more than the cap: cap wins.
        let b = shared.clamp(&Limits {
            deadline_ms: Some(60_000),
            step_limit: Some(1_000_000),
            tuple_limit: None,
        });
        assert!(b.remaining_time().is_some_and(|t| t <= Duration::from_secs(2)));
        assert_eq!(b.remaining_steps(), Some(1000));
        // Client asks for less: client wins.
        let b = shared.clamp(&Limits {
            deadline_ms: Some(5),
            step_limit: Some(10),
            tuple_limit: Some(3),
        });
        assert!(b.remaining_time().is_some_and(|t| t <= Duration::from_millis(5)));
        assert_eq!(b.remaining_steps(), Some(10));
        assert_eq!(b.remaining_tuples(), Some(3));
        // Shutdown authority: tripping the master token cancels clamped
        // budgets.
        shared.shutdown_token().cancel();
        let b = shared.clamp(&Limits::none());
        assert!(b.checkpoint().is_err());
    }

    #[test]
    fn writeq_accounting_is_symmetric() {
        let shared = test_shared(ServerCaps::default());
        shared.writeq_delta(0, 4096);
        shared.writeq_delta(4096, 1024);
        assert_eq!(shared.writeq_bytes.load(Ordering::Relaxed), 1024);
        shared.writeq_delta(1024, 0);
        assert_eq!(shared.writeq_bytes.load(Ordering::Relaxed), 0);
        assert_eq!(shared.registry.snapshot().gauge("server.writeq_bytes"), 0);
    }
}
