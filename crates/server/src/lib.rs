//! `vqd-server`: a budget-governed determinacy/rewriting service.
//!
//! This crate turns the workspace's effective procedures — unrestricted
//! CQ determinacy via the chase test (Theorem 3.7), canonical rewriting
//! extraction, certain-answer evaluation under sound views, bounded
//! containment, and the finite/semantic searches — into a long-running
//! TCP service with production-shaped resource governance:
//!
//! * **wire protocol** ([`proto`]): newline-delimited JSON envelopes
//!   with a version tag, correlation ids, client-requested limits, and
//!   a structured error taxonomy;
//! * **readiness-driven I/O** ([`netpoll`], [`server`]): a small fixed
//!   set of event-loop threads multiplexes every connection over
//!   non-blocking sockets via level-triggered `poll(2)` — idle
//!   connections consume zero CPU, and pipelined requests on one
//!   connection are answered strictly in request order;
//! * **admission control** ([`pool`]): a bounded request queue; a full
//!   queue rejects instantly with `overloaded` instead of buffering;
//!   two more backpressure tiers (per-connection in-flight caps and a
//!   global connection limit) degrade the same way;
//! * **budget clamping** ([`server`]): every request runs under
//!   `min(client limits, server caps)` via [`vqd_budget::Budget::min_of`],
//!   degrading to structured `exhausted` replies with partial progress;
//! * **graceful shutdown**: a shared [`vqd_budget::CancelToken`] drains
//!   in-flight work (canceled budgets report what was done) and joins
//!   every thread;
//! * **cross-request cache** ([`cache`]): `put_instance` registers a
//!   view extent and returns a handle; later `certain_sound` requests
//!   pass `{"handle": ...}` as the extent and reuse the cached chased
//!   index across requests — repeat requests report zero index builds
//!   with byte-identical answers;
//! * **crash-only disk tier** ([`disk`]): with `--cache-dir`, derived
//!   entries spill to a checksummed append-only segment and the handle
//!   table snapshots atomically, so a restarted server warm-starts and
//!   answers pre-restart handles with zero index builds; torn writes,
//!   truncation, bit flips, and I/O errors (all injectable via
//!   [`disk::DiskFault`]) degrade to counted clean misses, never wrong
//!   answers;
//! * **client library** ([`client`]): a blocking [`Client`] with
//!   per-call I/O timeouts and an opt-in idempotent-only
//!   [`client::RetryPolicy`], for tests, the CLI, and the `loadgen`
//!   bench.
//!
//! Everything is `std`-only: `std::net` sockets, `std::thread` workers,
//! `std::sync::mpsc` queues, and the workspace's [`serde::json`] shim
//! for the wire format.
//!
//! ```no_run
//! use vqd_server::{Client, Limits, Request, ServerConfig};
//!
//! let handle = vqd_server::spawn(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let reply = client
//!     .call(
//!         Limits { deadline_ms: Some(1000), ..Limits::none() },
//!         Request::Decide {
//!             schema: "E/2".into(),
//!             views: "V(x,y) :- E(x,y).".into(),
//!             query: "Q(x,z) :- E(x,y), E(y,z).".into(),
//!         },
//!     )
//!     .unwrap();
//! println!("{}", reply.outcome);
//! handle.shutdown();
//! ```

pub mod cache;
pub mod client;
pub mod disk;
pub mod engine;
pub mod metrics;
pub mod netpoll;
pub mod pool;
pub mod proto;
pub mod server;

pub use cache::{CacheConfig, CacheCounters, HandleEntry, InstanceCache};
pub use client::{Client, RetryPolicy};
pub use disk::{DiskConfig, DiskCounters, DiskFault, DiskTier};
pub use metrics::Metrics;
pub use pool::{Pool, QueueHandle, ReplyTo, SubmitError};
pub use proto::{
    Envelope, ErrorKind, Limits, Outcome, Request, Response, Timeline, WireCounterexample,
    WireMetrics, WireStats, PROTOCOL_VERSION,
};
pub use server::{spawn, ServerCaps, ServerConfig, ServerHandle};
