//! Blocking client for the vqd wire protocol.
//!
//! One [`Client`] owns one TCP connection and issues requests in order:
//! write one envelope line, read one response line — or, with
//! [`Client::call_many`], pipeline a whole batch (write every request
//! before reading any reply; the server answers in request order). For
//! concurrency, open several clients — the server multiplexes
//! connections onto a fixed set of event-loop threads and its worker
//! pool.
//!
//! ## Resilience
//!
//! Per-call read/write timeouts bound how long any single call can
//! block ([`Client::set_io_timeouts`]). An opt-in [`RetryPolicy`]
//! ([`Client::set_retry`]) retries **only**:
//!
//! * idempotent operations — `put_instance` (mints a fresh handle per
//!   call), `evict_instance`, `shutdown`, and `debug_panic` are never
//!   retried;
//! * typed transient failures — an `overloaded` reply (the server
//!   answered; only its queue was full) or a transport error before any
//!   reply byte arrived (including a refused reconnect);
//! * and **never after a partial reply**: once any reply bytes were
//!   consumed, a resend could pair the old reply with the new request,
//!   so the transport error surfaces to the caller instead.
//!
//! Backoff is exponential with seeded jitter (deterministic per
//! [`RetryPolicy::seed`], via the workspace rand shim), so a thundering
//! herd of retrying clients decorrelates without nondeterministic tests.

use crate::proto::{
    Envelope, ErrorKind, Limits, Outcome, Request, Response, WireMetrics,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Opt-in retry behavior for [`Client`] calls (see the module docs for
/// what is — and is not — retried).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Jitter seed: each backoff is sampled uniformly from
    /// `[delay/2, delay]` by a generator seeded here, so retry timing is
    /// reproducible in tests.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry number `attempt` (1-based).
    fn backoff_delay(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let doublings = attempt.saturating_sub(1).min(16);
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff);
        let nanos = (exp.as_nanos().min(u128::from(u64::MAX)) as u64).max(2);
        Duration::from_nanos(rng.gen_range(nanos / 2..=nanos))
    }
}

/// Whether resending `request` verbatim is safe: true exactly for the
/// read-only/pure operations. `put_instance` mints a fresh handle per
/// call, `evict_instance` changes cache state, and `shutdown` /
/// `debug_panic` are one-shot by design.
fn retry_safe(request: &Request) -> bool {
    !matches!(
        request,
        Request::PutInstance { .. }
            | Request::EvictInstance { .. }
            | Request::Shutdown
            | Request::DebugPanic
    )
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// Peer address, kept for reconnect-on-retry (`None` when the
    /// resolved address is unknowable, which disables reconnects).
    addr: Option<SocketAddr>,
    read_timeout: Cell<Option<Duration>>,
    write_timeout: Cell<Option<Duration>>,
    retry: Option<RetryPolicy>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let addr = stream.peer_addr().ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 0,
            addr,
            read_timeout: Cell::new(None),
            write_timeout: Cell::new(None),
            retry: None,
        })
    }

    /// Caps how long [`Client::call`] waits for a reply (`None` = wait
    /// forever). Server-side budgets normally bound this anyway.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_timeout.set(timeout);
        self.writer.set_read_timeout(timeout)
    }

    /// Caps how long a request write may block (`None` = forever).
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.write_timeout.set(timeout);
        self.writer.set_write_timeout(timeout)
    }

    /// Sets both per-call I/O timeouts at once.
    pub fn set_io_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> io::Result<()> {
        self.set_read_timeout(read)?;
        self.set_write_timeout(write)
    }

    /// Enables (or, with `None`, disables) retries for subsequent calls.
    pub fn set_retry(&mut self, retry: Option<RetryPolicy>) {
        self.retry = retry;
    }

    fn fresh_id(&mut self) -> String {
        self.next_id += 1;
        format!("c{}", self.next_id)
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_line(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Issues one request under the given limits and blocks for the
    /// reply. `Err` is a transport failure; protocol-level failures come
    /// back inside the [`Response`].
    pub fn call(&mut self, limits: Limits, request: Request) -> io::Result<Response> {
        let id = self.fresh_id();
        self.send(Envelope::new(id, limits, request))
    }

    /// Like [`Client::call`], but asks the server to attach a
    /// per-request execution profile (engine counter deltas) to the
    /// reply's `profile` field.
    pub fn call_profiled(&mut self, limits: Limits, request: Request) -> io::Result<Response> {
        let id = self.fresh_id();
        self.send(Envelope::new(id, limits, request).with_profile(true))
    }

    /// Like [`Client::call`], but asks the server to attach a span trace
    /// (JSONL, one span event per line) to the reply's `trace` field.
    pub fn call_traced(&mut self, limits: Limits, request: Request) -> io::Result<Response> {
        let id = self.fresh_id();
        self.send(Envelope::new(id, limits, request).with_trace(true))
    }

    /// Pipelined batch: writes every request before reading any reply,
    /// then reads exactly one reply per request. The server guarantees
    /// replies arrive in request order per connection, and this method
    /// verifies it — a reply whose id does not match the next expected
    /// request is an `InvalidData` transport error.
    ///
    /// Batches are never retried (a mid-batch resend could not tell
    /// which requests the server already executed); protocol-level
    /// failures (`overloaded`, `exhausted`, errors) come back as
    /// structured outcomes at their request's position.
    pub fn call_many(
        &mut self,
        requests: Vec<(Limits, Request)>,
    ) -> io::Result<Vec<Response>> {
        self.call_many_inner(requests, false)
    }

    /// [`Client::call_many`] with per-request execution profiles
    /// attached to each reply (engine counter deltas stay exact per
    /// request even under pipelining: workers serve one job at a time).
    pub fn call_many_profiled(
        &mut self,
        requests: Vec<(Limits, Request)>,
    ) -> io::Result<Vec<Response>> {
        self.call_many_inner(requests, true)
    }

    fn call_many_inner(
        &mut self,
        requests: Vec<(Limits, Request)>,
        profiled: bool,
    ) -> io::Result<Vec<Response>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let mut ids = Vec::with_capacity(requests.len());
        let mut batch = String::new();
        for (limits, request) in requests {
            let id = self.fresh_id();
            let envelope = Envelope::new(id.clone(), limits, request).with_profile(profiled);
            batch.push_str(&envelope.to_json().to_string());
            batch.push('\n');
            ids.push(id);
        }
        self.writer.write_all(batch.as_bytes())?;
        self.writer.flush()?;
        let mut replies = Vec::with_capacity(ids.len());
        for expected in &ids {
            let response = self.read_response()?;
            if &response.id != expected {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "pipelined reply out of order: expected id {expected:?}, got {:?}",
                        response.id
                    ),
                ));
            }
            replies.push(response);
        }
        Ok(replies)
    }

    fn send(&mut self, envelope: Envelope) -> io::Result<Response> {
        let Some(policy) = self.retry.clone() else {
            return self.send_once(&envelope).map_err(|(e, _)| e);
        };
        if !retry_safe(&envelope.request) {
            return self.send_once(&envelope).map_err(|(e, _)| e);
        }
        let max_attempts = policy.max_attempts.max(1);
        let mut rng = StdRng::seed_from_u64(policy.seed);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.send_once(&envelope) {
                Ok(response) => {
                    let transient = matches!(response.outcome, Outcome::Overloaded { .. });
                    if !transient || attempt >= max_attempts {
                        return Ok(response);
                    }
                    // The server answered; only its queue was full. Back
                    // off and resend on the same connection.
                    std::thread::sleep(policy.backoff_delay(attempt, &mut rng));
                }
                Err((error, reply_started)) => {
                    if reply_started || attempt >= max_attempts {
                        return Err(error);
                    }
                    std::thread::sleep(policy.backoff_delay(attempt, &mut rng));
                    // A refused reconnect leaves the dead streams in
                    // place: the next attempt fails fast on the write and
                    // re-enters here, so "connect refused" consumes
                    // attempts like any other transient failure.
                    self.reconnect().ok();
                }
            }
        }
    }

    /// One write + one read. The error side carries `reply_started`:
    /// whether any reply bytes were consumed (in which case a retry
    /// could desynchronize request/reply pairing and is forbidden).
    fn send_once(&mut self, envelope: &Envelope) -> Result<Response, (io::Error, bool)> {
        writeln!(self.writer, "{}", envelope.to_json()).map_err(|e| (e, false))?;
        self.writer.flush().map_err(|e| (e, false))?;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err((
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection"),
                false,
            )),
            // A line (or a truncated line at EOF) arrived: reply bytes
            // were consumed, so a parse failure is final, never retried.
            Ok(_) => Response::from_line(line.trim())
                .map_err(|e| (io::Error::new(io::ErrorKind::InvalidData, e), true)),
            Err(e) => {
                let reply_started = !line.is_empty();
                Err((e, reply_started))
            }
        }
    }

    /// Replaces the connection with a fresh one to the original peer,
    /// re-applying the stored timeouts. On failure the old (dead)
    /// streams stay in place.
    fn reconnect(&mut self) -> io::Result<()> {
        let addr = self
            .addr
            .ok_or_else(|| io::Error::other("no peer address to reconnect to"))?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.read_timeout.get())?;
        stream.set_write_timeout(self.write_timeout.get())?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        Ok(())
    }

    /// Sends a raw line (not necessarily a valid envelope) and reads one
    /// reply. Blank lines get no reply — don't send them here. Raw
    /// calls never retry.
    pub fn call_raw(&mut self, line: &str) -> io::Result<Response> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Liveness probe; `Ok(true)` iff the server answered `pong`.
    pub fn ping(&mut self) -> io::Result<bool> {
        Ok(self.call(Limits::none(), Request::Ping)?.outcome == Outcome::Pong)
    }

    /// Fetches the server's flat metrics snapshot.
    pub fn stats(&mut self) -> io::Result<WireMetrics> {
        self.stats_full().map(|(m, _)| m)
    }

    /// Fetches the server's metrics snapshot together with the full
    /// registry (per-op counters, gauges, latency histograms).
    pub fn stats_full(&mut self) -> io::Result<(WireMetrics, vqd_obs::RegistrySnapshot)> {
        match self.call(Limits::none(), Request::Stats)?.outcome {
            Outcome::StatsSnapshot { metrics, registry } => Ok((metrics, registry)),
            Outcome::Error { kind, message } => Err(io::Error::other(format!(
                "stats failed [{}]: {message}",
                kind.as_str()
            ))),
            other => Err(io::Error::other(format!(
                "unexpected stats reply: {other}"
            ))),
        }
    }

    /// Registers a view extent in the server's cross-request cache.
    /// Returns `(handle, fingerprint)` on success.
    pub fn put_instance(
        &mut self,
        schema: impl Into<String>,
        extent: impl Into<String>,
    ) -> io::Result<(String, String)> {
        let request =
            Request::PutInstance { schema: schema.into(), extent: extent.into() };
        match self.call(Limits::none(), request)?.outcome {
            Outcome::InstancePut { handle, fingerprint, .. } => Ok((handle, fingerprint)),
            Outcome::Error { kind, message } => Err(io::Error::other(format!(
                "put_instance failed [{}]: {message}",
                kind.as_str()
            ))),
            other => Err(io::Error::other(format!("unexpected put reply: {other}"))),
        }
    }

    /// Drops a cached instance handle; `Ok(true)` iff it existed.
    pub fn evict_instance(&mut self, handle: impl Into<String>) -> io::Result<bool> {
        let request = Request::EvictInstance { handle: handle.into() };
        match self.call(Limits::none(), request)?.outcome {
            Outcome::Evicted { existed, .. } => Ok(existed),
            Outcome::Error { kind, message } => Err(io::Error::other(format!(
                "evict_instance failed [{}]: {message}",
                kind.as_str()
            ))),
            other => Err(io::Error::other(format!("unexpected evict reply: {other}"))),
        }
    }

    /// Fetches the server's cache counters as the raw outcome (the
    /// caller matches on [`Outcome::CacheStatsSnapshot`]).
    pub fn cache_stats(&mut self) -> io::Result<Outcome> {
        Ok(self.call(Limits::none(), Request::CacheStats)?.outcome)
    }

    /// Fetches the server's flight-recorder contents as JSONL (one
    /// request digest per line, oldest first; empty string when no
    /// requests have been recorded yet).
    pub fn flight(&mut self) -> io::Result<String> {
        match self.call(Limits::none(), Request::Flight)?.outcome {
            Outcome::FlightSnapshot { jsonl } => Ok(jsonl),
            Outcome::Error { kind, message } => Err(io::Error::other(format!(
                "flight failed [{}]: {message}",
                kind.as_str()
            ))),
            other => Err(io::Error::other(format!(
                "unexpected flight reply: {other}"
            ))),
        }
    }

    /// Fetches the server's registry rendered in Prometheus
    /// text-exposition format.
    pub fn metrics_prom(&mut self) -> io::Result<String> {
        match self.call(Limits::none(), Request::MetricsProm)?.outcome {
            Outcome::MetricsText { text } => Ok(text),
            Outcome::Error { kind, message } => Err(io::Error::other(format!(
                "metrics_prom failed [{}]: {message}",
                kind.as_str()
            ))),
            other => Err(io::Error::other(format!(
                "unexpected metrics_prom reply: {other}"
            ))),
        }
    }

    /// Asks the server to drain and stop; `Ok(true)` iff acknowledged.
    pub fn shutdown_server(&mut self) -> io::Result<bool> {
        Ok(self.call(Limits::none(), Request::Shutdown)?.outcome == Outcome::ShuttingDown)
    }
}

/// Convenience: classify a response for exit-code style reporting.
/// Returns `Ok(())` for `ok` outcomes and a message otherwise.
pub fn ensure_ok(response: &Response) -> Result<(), String> {
    match &response.outcome {
        Outcome::Error { kind, message } => {
            Err(format!("error [{}]: {message}", kind.as_str()))
        }
        Outcome::Exhausted { reason, partial } => {
            Err(format!("exhausted ({reason}): {partial}"))
        }
        Outcome::Overloaded { queue_depth, queue_capacity } => Err(format!(
            "overloaded (queue {queue_depth}/{queue_capacity})"
        )),
        _ => Ok(()),
    }
}

/// True iff the outcome is a protocol/engine error of the given kind.
pub fn is_error_kind(response: &Response, kind: ErrorKind) -> bool {
    matches!(&response.outcome, Outcome::Error { kind: k, .. } if *k == kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::WireStats;
    use std::net::{SocketAddr, TcpListener};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;

    /// A hand-scripted "server": the closure gets the listener and plays
    /// out exactly the failure shape the test needs.
    fn scripted_server<F>(script: F) -> (SocketAddr, JoinHandle<()>)
    where
        F: FnOnce(TcpListener) + Send + 'static,
    {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || script(listener));
        (addr, handle)
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            seed: 7,
        }
    }

    fn pong_line() -> String {
        Response::new("r", Outcome::Pong, WireStats::default()).to_json().to_string()
    }

    fn read_one_line(conn: &TcpStream) -> String {
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut line = String::new();
        let _ = reader.read_line(&mut line);
        line
    }

    #[test]
    fn retry_reconnects_after_a_dropped_connection() {
        let requests = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&requests);
        let (addr, server) = scripted_server(move |listener| {
            {
                // First connection: swallow the request, hang up.
                let (conn, _) = listener.accept().expect("accept 1");
                let _ = read_one_line(&conn);
                seen.fetch_add(1, Ordering::Relaxed);
            }
            // Second connection: serve the retried request.
            let (mut conn, _) = listener.accept().expect("accept 2");
            let _ = read_one_line(&conn);
            seen.fetch_add(1, Ordering::Relaxed);
            writeln!(conn, "{}", pong_line()).expect("reply");
        });
        let mut c = Client::connect(addr).expect("connect");
        c.set_retry(Some(fast_policy()));
        assert!(c.ping().expect("retried ping must succeed"));
        assert_eq!(requests.load(Ordering::Relaxed), 2, "one original + one retry");
        server.join().expect("server thread");
    }

    #[test]
    fn overloaded_reply_is_retried_on_the_same_connection() {
        let (addr, server) = scripted_server(move |listener| {
            let (mut conn, _) = listener.accept().expect("accept");
            let _ = read_one_line(&conn);
            let busy = Response::new(
                "r",
                Outcome::Overloaded { queue_depth: 1, queue_capacity: 1 },
                WireStats::default(),
            );
            writeln!(conn, "{}", busy.to_json()).expect("busy reply");
            // Same connection: the resend arrives here.
            let _ = read_one_line(&conn);
            writeln!(conn, "{}", pong_line()).expect("pong reply");
        });
        let mut c = Client::connect(addr).expect("connect");
        c.set_retry(Some(fast_policy()));
        assert!(c.ping().expect("must surface the eventual pong"));
        server.join().expect("server thread");
    }

    #[test]
    fn partial_reply_is_never_retried() {
        let requests = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&requests);
        let (addr, server) = scripted_server(move |listener| {
            let (mut conn, _) = listener.accept().expect("accept");
            let _ = read_one_line(&conn);
            seen.fetch_add(1, Ordering::Relaxed);
            // Half a reply, no newline, then hang up mid-line.
            conn.write_all(b"{\"v\":2,\"id\":\"r").expect("partial");
            // Connection drops on scope exit; no further accepts.
        });
        let mut c = Client::connect(addr).expect("connect");
        c.set_retry(Some(fast_policy()));
        let err = c.ping().expect_err("a truncated reply must surface, not retry");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert_eq!(requests.load(Ordering::Relaxed), 1, "exactly one attempt");
        server.join().expect("server thread");
    }

    #[test]
    fn non_idempotent_ops_are_never_retried() {
        let requests = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&requests);
        let (addr, server) = scripted_server(move |listener| {
            let (conn, _) = listener.accept().expect("accept");
            let _ = read_one_line(&conn);
            seen.fetch_add(1, Ordering::Relaxed);
            // Hang up without replying; a retry would show up as a
            // second accept, which this script never performs.
        });
        let mut c = Client::connect(addr).expect("connect");
        c.set_retry(Some(fast_policy()));
        c.put_instance("V/2", "V(a,b).")
            .expect_err("put_instance must fail without retrying");
        assert_eq!(requests.load(Ordering::Relaxed), 1, "exactly one attempt");
        server.join().expect("server thread");
    }

    #[test]
    fn refused_reconnects_exhaust_bounded_attempts() {
        let (addr, server) = scripted_server(move |listener| {
            let (conn, _) = listener.accept().expect("accept");
            // Drop the connection AND the listener without reading:
            // every attempt and every reconnect is refused from here on.
            drop(conn);
        });
        let mut c = Client::connect(addr).expect("connect");
        // Joining first guarantees the listener is gone before the
        // first attempt, so the schedule is deterministic.
        server.join().expect("server thread");
        c.set_retry(Some(fast_policy()));
        c.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        let started = std::time::Instant::now();
        c.ping().expect_err("all attempts refused must end in an error");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "attempts are bounded, not an endless reconnect loop"
        );
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            seed: 42,
        };
        let delays = |seed: u64| -> Vec<Duration> {
            let mut rng = StdRng::seed_from_u64(seed);
            (1..=4).map(|a| policy.backoff_delay(a, &mut rng)).collect()
        };
        assert_eq!(delays(42), delays(42), "same seed, same schedule");
        for (i, d) in delays(42).iter().enumerate() {
            let cap = Duration::from_millis(40.min(10 << i));
            assert!(*d <= cap, "attempt {} delay {d:?} over cap {cap:?}", i + 1);
            assert!(*d >= cap / 2, "jitter floor is half the exponential delay");
        }
    }

    #[test]
    fn retry_safety_classification() {
        assert!(retry_safe(&Request::Ping));
        assert!(retry_safe(&Request::CacheStats));
        assert!(retry_safe(&Request::Stats));
        assert!(!retry_safe(&Request::PutInstance {
            schema: "V/2".into(),
            extent: "V(a,b).".into()
        }));
        assert!(!retry_safe(&Request::EvictInstance { handle: "h1".into() }));
        assert!(!retry_safe(&Request::Shutdown));
        assert!(!retry_safe(&Request::DebugPanic));
    }
}
