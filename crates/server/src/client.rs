//! Blocking client for the vqd wire protocol.
//!
//! One [`Client`] owns one TCP connection and issues requests in order:
//! write one envelope line, read one response line. For concurrency,
//! open several clients — the server multiplexes connections onto its
//! worker pool.

use crate::proto::{
    Envelope, ErrorKind, Limits, Outcome, Request, Response, WireMetrics,
};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 0,
        })
    }

    /// Caps how long [`Client::call`] waits for a reply (`None` = wait
    /// forever). Server-side budgets normally bound this anyway.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    fn fresh_id(&mut self) -> String {
        self.next_id += 1;
        format!("c{}", self.next_id)
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_line(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Issues one request under the given limits and blocks for the
    /// reply. `Err` is a transport failure; protocol-level failures come
    /// back inside the [`Response`].
    pub fn call(&mut self, limits: Limits, request: Request) -> io::Result<Response> {
        let id = self.fresh_id();
        self.send(Envelope::new(id, limits, request))
    }

    /// Like [`Client::call`], but asks the server to attach a
    /// per-request execution profile (engine counter deltas) to the
    /// reply's `profile` field.
    pub fn call_profiled(&mut self, limits: Limits, request: Request) -> io::Result<Response> {
        let id = self.fresh_id();
        self.send(Envelope::new(id, limits, request).with_profile(true))
    }

    /// Like [`Client::call`], but asks the server to attach a span trace
    /// (JSONL, one span event per line) to the reply's `trace` field.
    pub fn call_traced(&mut self, limits: Limits, request: Request) -> io::Result<Response> {
        let id = self.fresh_id();
        self.send(Envelope::new(id, limits, request).with_trace(true))
    }

    fn send(&mut self, envelope: Envelope) -> io::Result<Response> {
        writeln!(self.writer, "{}", envelope.to_json())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends a raw line (not necessarily a valid envelope) and reads one
    /// reply. Blank lines get no reply — don't send them here.
    pub fn call_raw(&mut self, line: &str) -> io::Result<Response> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Liveness probe; `Ok(true)` iff the server answered `pong`.
    pub fn ping(&mut self) -> io::Result<bool> {
        Ok(self.call(Limits::none(), Request::Ping)?.outcome == Outcome::Pong)
    }

    /// Fetches the server's flat metrics snapshot.
    pub fn stats(&mut self) -> io::Result<WireMetrics> {
        self.stats_full().map(|(m, _)| m)
    }

    /// Fetches the server's metrics snapshot together with the full
    /// registry (per-op counters, gauges, latency histograms).
    pub fn stats_full(&mut self) -> io::Result<(WireMetrics, vqd_obs::RegistrySnapshot)> {
        match self.call(Limits::none(), Request::Stats)?.outcome {
            Outcome::StatsSnapshot { metrics, registry } => Ok((metrics, registry)),
            Outcome::Error { kind, message } => Err(io::Error::other(format!(
                "stats failed [{}]: {message}",
                kind.as_str()
            ))),
            other => Err(io::Error::other(format!(
                "unexpected stats reply: {other}"
            ))),
        }
    }

    /// Registers a view extent in the server's cross-request cache.
    /// Returns `(handle, fingerprint)` on success.
    pub fn put_instance(
        &mut self,
        schema: impl Into<String>,
        extent: impl Into<String>,
    ) -> io::Result<(String, String)> {
        let request =
            Request::PutInstance { schema: schema.into(), extent: extent.into() };
        match self.call(Limits::none(), request)?.outcome {
            Outcome::InstancePut { handle, fingerprint, .. } => Ok((handle, fingerprint)),
            Outcome::Error { kind, message } => Err(io::Error::other(format!(
                "put_instance failed [{}]: {message}",
                kind.as_str()
            ))),
            other => Err(io::Error::other(format!("unexpected put reply: {other}"))),
        }
    }

    /// Drops a cached instance handle; `Ok(true)` iff it existed.
    pub fn evict_instance(&mut self, handle: impl Into<String>) -> io::Result<bool> {
        let request = Request::EvictInstance { handle: handle.into() };
        match self.call(Limits::none(), request)?.outcome {
            Outcome::Evicted { existed, .. } => Ok(existed),
            Outcome::Error { kind, message } => Err(io::Error::other(format!(
                "evict_instance failed [{}]: {message}",
                kind.as_str()
            ))),
            other => Err(io::Error::other(format!("unexpected evict reply: {other}"))),
        }
    }

    /// Fetches the server's cache counters as the raw outcome (the
    /// caller matches on [`Outcome::CacheStatsSnapshot`]).
    pub fn cache_stats(&mut self) -> io::Result<Outcome> {
        Ok(self.call(Limits::none(), Request::CacheStats)?.outcome)
    }

    /// Asks the server to drain and stop; `Ok(true)` iff acknowledged.
    pub fn shutdown_server(&mut self) -> io::Result<bool> {
        Ok(self.call(Limits::none(), Request::Shutdown)?.outcome == Outcome::ShuttingDown)
    }
}

/// Convenience: classify a response for exit-code style reporting.
/// Returns `Ok(())` for `ok` outcomes and a message otherwise.
pub fn ensure_ok(response: &Response) -> Result<(), String> {
    match &response.outcome {
        Outcome::Error { kind, message } => {
            Err(format!("error [{}]: {message}", kind.as_str()))
        }
        Outcome::Exhausted { reason, partial } => {
            Err(format!("exhausted ({reason}): {partial}"))
        }
        Outcome::Overloaded { queue_depth, queue_capacity } => Err(format!(
            "overloaded (queue {queue_depth}/{queue_capacity})"
        )),
        _ => Ok(()),
    }
}

/// True iff the outcome is a protocol/engine error of the given kind.
pub fn is_error_kind(response: &Response, kind: ErrorKind) -> bool {
    matches!(&response.outcome, Outcome::Error { kind: k, .. } if *k == kind)
}
