//! Lock-free service counters.
//!
//! One [`Metrics`] instance is shared (behind an `Arc`) by the acceptor,
//! every connection thread, and every worker; all fields are relaxed
//! atomics — these are observability counters, not synchronization.

use crate::proto::WireMetrics;
use std::sync::atomic::{AtomicU64, Ordering};

/// Service-wide counters; see [`WireMetrics`] for field meanings.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests admitted into the queue.
    pub accepted: AtomicU64,
    /// Requests that produced an `ok` outcome.
    pub completed_ok: AtomicU64,
    /// Requests whose budget tripped.
    pub exhausted: AtomicU64,
    /// Requests rejected by admission control.
    pub rejected: AtomicU64,
    /// `error`-status responses written.
    pub errors: AtomicU64,
    /// Requests currently queued.
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: AtomicU64,
    /// Connections currently open.
    pub connections_open: AtomicU64,
    /// Connections accepted since start.
    pub connections_total: AtomicU64,
    /// Worker threads serving the queue (set once at startup).
    pub workers: AtomicU64,
}

impl Metrics {
    /// Fresh, zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records a request entering the queue and returns the observed
    /// depth. Call *before* the actual `try_send` (and undo a rejection
    /// with [`Metrics::unenqueued`]) so a fast worker's [`Metrics::dequeued`]
    /// can never observe the counter below zero.
    pub fn enqueued(&self) -> u64 {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Folds a *successful* admission's observed depth into the
    /// high-water mark. Kept separate from [`Metrics::enqueued`] so
    /// rejected (speculatively counted) submissions don't inflate it.
    pub fn admitted(&self, observed_depth: u64) {
        self.max_queue_depth.fetch_max(observed_depth, Ordering::Relaxed);
    }

    /// Undoes [`Metrics::enqueued`] after a rejected submission.
    pub fn unenqueued(&self) {
        self.accepted.fetch_sub(1, Ordering::Relaxed);
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a worker picking a request off the queue.
    pub fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot for the wire.
    pub fn snapshot(&self) -> WireMetrics {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        WireMetrics {
            accepted: get(&self.accepted),
            completed_ok: get(&self.completed_ok),
            exhausted: get(&self.exhausted),
            rejected: get(&self.rejected),
            errors: get(&self.errors),
            queue_depth: get(&self.queue_depth),
            max_queue_depth: get(&self.max_queue_depth),
            connections_open: get(&self.connections_open),
            connections_total: get(&self.connections_total),
            workers: get(&self.workers),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_depth_tracks_high_water_mark() {
        let m = Metrics::new();
        m.admitted(m.enqueued());
        m.admitted(m.enqueued());
        m.admitted(m.enqueued());
        m.dequeued();
        m.admitted(m.enqueued());
        let s = m.snapshot();
        assert_eq!(s.accepted, 4);
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.max_queue_depth, 3);
    }

    #[test]
    fn rejected_submissions_do_not_move_the_high_water_mark() {
        let m = Metrics::new();
        m.admitted(m.enqueued());
        let depth = m.enqueued();
        m.unenqueued();
        assert!(depth > 1, "speculative depth was observed");
        let s = m.snapshot();
        assert_eq!(s.accepted, 1);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.max_queue_depth, 1);
    }
}
