//! Crash-only persistent tier for the instance cache.
//!
//! Derived entries (chased canonical databases) spill to an append-only
//! segment file; an in-memory offset index maps derived keys to record
//! offsets; the handle table snapshots to a sibling file written
//! atomically (tmp + rename). Everything is `std`-only, matching the
//! workspace shim policy.
//!
//! ## Record format
//!
//! ```text
//! record   := magic(u32 LE) | len(u32 LE) | crc(u64 LE) | payload
//! crc      := FNV-1a 64 over payload
//! payload  := kind(u8) | body
//! kind 1   := derived entry: key | fp64 | instance
//! kind 2   := handle snapshot: next_handle | count | handles…
//! ```
//!
//! A derived payload carries the derived key, a 64-bit digest of the
//! chased index's canonical [`IndexedInstance::fingerprint`], and the
//! chased instance itself (schema declarations + raw tuple values —
//! `Named`/`Null` flavour bit plus interned id, which is exactly what
//! the deterministic per-request interning contract makes portable).
//!
//! ## Crash-only invariants
//!
//! The tier is a *pure cache*: the only recovery action is "re-chase on
//! the next miss", so nothing here can ever turn wrong bytes into a
//! wrong answer. Concretely:
//!
//! * **spill-then-index**: a record is fully appended before its key
//!   enters the offset index, so a crash mid-append loses at most the
//!   tail record;
//! * **startup scan**: a record with a bad magic, an implausible length
//!   frame, a bad checksum, or an undecodable payload is silently
//!   dropped (checksum-bad records are skipped individually — the
//!   length frame still delimits them; frame-level damage drops the
//!   tail from that point);
//! * **load verification**: a loaded record must decode, rebuild, and
//!   reproduce both its stored key and its stored fingerprint digest,
//!   or it is dropped and the lookup degrades to a counted clean miss;
//! * **failure demotion**: any I/O error on read or write drops the
//!   affected record from the index and counts `disk_io_errors`; the
//!   RAM tier and the serving path never observe the failure.
//!
//! ## Fault injection
//!
//! [`DiskFault`] is modeled on [`vqd_budget::Budget::trip_after`]: arm a
//! fault to fire on the Nth subsequent I/O of its class. Short writes,
//! read errors, post-write truncation (a torn tail), and single-bit
//! flips are all injectable, so the test suite can prove every failure
//! class degrades to a clean miss.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use vqd_instance::{IndexedInstance, Instance, Schema, Value};
use vqd_obs::Registry;

use crate::cache::HandleEntry;

/// Segment file holding spilled derived entries.
pub const SEGMENT_FILE: &str = "cache.seg";
/// Atomic snapshot of the handle table.
pub const HANDLES_FILE: &str = "handles.snap";

const RECORD_MAGIC: u32 = 0x5651_4452; // "VQDR"
const RECORD_HEADER_BYTES: u64 = 16;
/// Sanity cap on a single record's payload; anything larger is treated
/// as frame damage (the RAM tier's byte budget keeps real entries far
/// below this).
const MAX_RECORD_BYTES: u32 = 1 << 30;

const KIND_DERIVED: u8 = 1;
const KIND_HANDLES: u8 = 2;

/// Sizing/location knobs for the disk tier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiskConfig {
    /// Directory holding the segment file and handle snapshot. Created
    /// on first use.
    pub dir: PathBuf,
    /// Compaction threshold for the segment file: when the live segment
    /// grows past this, it is rewritten keeping the newest live records
    /// that fit in three quarters of the budget.
    pub max_bytes: u64,
}

impl DiskConfig {
    /// A disk tier rooted at `dir` with the default byte budget.
    pub fn at(dir: impl Into<PathBuf>) -> DiskConfig {
        DiskConfig { dir: dir.into(), max_bytes: 256 << 20 }
    }
}

/// Injectable disk failure classes (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// The write persists only half the record frame, then errors.
    ShortWrite,
    /// The read fails outright with an I/O error.
    ReadError,
    /// The write reports success but the file is truncated mid-record
    /// afterwards (a torn tail, as a crash between syscalls would leave).
    Truncate,
    /// One bit of the read buffer is flipped at a key-sampled offset.
    BitFlip,
}

/// Trip-after-Nth-operation fault plan, one counter per class. `0`
/// means disarmed; arming with `n` fires on the nth subsequent I/O of
/// that class, once.
#[derive(Default)]
struct FaultPlan {
    short_write: AtomicU64,
    read_error: AtomicU64,
    truncate: AtomicU64,
    bit_flip: AtomicU64,
}

impl FaultPlan {
    fn slot(&self, fault: DiskFault) -> &AtomicU64 {
        match fault {
            DiskFault::ShortWrite => &self.short_write,
            DiskFault::ReadError => &self.read_error,
            DiskFault::Truncate => &self.truncate,
            DiskFault::BitFlip => &self.bit_flip,
        }
    }

    /// Decrements the class counter; true exactly when it hits zero.
    fn fires(&self, fault: DiskFault) -> bool {
        let slot = self.slot(fault);
        loop {
            let cur = slot.load(Ordering::Relaxed);
            if cur == 0 {
                return false;
            }
            if slot
                .compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return cur == 1;
            }
        }
    }
}

/// Point-in-time disk-tier counters (merged into
/// [`crate::cache::CacheCounters`] and mirrored into the registry as
/// `cache.disk_*`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskCounters {
    /// Loads that returned a verified record.
    pub hits: u64,
    /// Lookups that found nothing usable (absent, corrupt, or failed).
    pub misses: u64,
    /// Records appended to the segment.
    pub spills: u64,
    /// Disk hits promoted back into the RAM LRU.
    pub promotions: u64,
    /// Records dropped for bad framing, checksum, or fingerprint.
    pub corrupt_dropped: u64,
    /// Read/write failures demoted to clean misses.
    pub io_errors: u64,
    /// Live segment bytes.
    pub bytes: u64,
}

struct State {
    /// Next append offset == logical end of the segment (bytes past it
    /// are torn garbage from a failed append, overwritten next time).
    tail: u64,
    /// key → (record offset, whole-frame length).
    index: HashMap<String, (u64, u64)>,
    /// Append order of keys (duplicates allowed; the index holds the
    /// authoritative offset). Drives newest-first restore + compaction.
    order: Vec<String>,
}

/// The crash-only disk tier described in the module docs.
pub struct DiskTier {
    config: DiskConfig,
    state: Mutex<State>,
    faults: FaultPlan,
    registry: Arc<Registry>,
    hits: AtomicU64,
    misses: AtomicU64,
    spills: AtomicU64,
    promotions: AtomicU64,
    corrupt_dropped: AtomicU64,
    io_errors: AtomicU64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// --- little-endian payload codec -------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// 64-bit digest of a canonical [`IndexedInstance::fingerprint`] — the
/// stored form of "which chased database these bytes claim to be".
pub fn fingerprint_digest(index: &IndexedInstance) -> u64 {
    fnv1a(index.fingerprint().as_bytes())
}

fn encode_instance(buf: &mut Vec<u8>, instance: &Instance) {
    let schema = instance.schema();
    put_u32(buf, schema.len() as u32);
    for (rel, decl) in schema.iter() {
        put_str(buf, &decl.name);
        put_u32(buf, decl.arity as u32);
        let relation = instance
            .iter()
            .find(|(r, _)| *r == rel)
            .map(|(_, relation)| relation);
        let tuples: Vec<_> = relation.map(|r| r.iter().collect()).unwrap_or_default();
        put_u32(buf, tuples.len() as u32);
        for tuple in tuples {
            for &v in tuple {
                match v {
                    Value::Named(i) => {
                        buf.push(0);
                        put_u32(buf, i);
                    }
                    Value::Null(i) => {
                        buf.push(1);
                        put_u32(buf, i);
                    }
                }
            }
        }
    }
}

fn decode_instance(c: &mut Cursor<'_>) -> Option<Instance> {
    let nrels = c.u32()?;
    if nrels > 1 << 16 {
        return None;
    }
    let mut decls: Vec<(String, usize)> = Vec::with_capacity(nrels as usize);
    let mut tuples: Vec<Vec<Vec<Value>>> = Vec::with_capacity(nrels as usize);
    for _ in 0..nrels {
        let name = c.str()?;
        let arity = c.u32()? as usize;
        let count = c.u32()? as usize;
        let mut rel_tuples = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let mut tuple = Vec::with_capacity(arity);
            for _ in 0..arity {
                let tag = c.u8()?;
                let id = c.u32()?;
                tuple.push(match tag {
                    0 => Value::Named(id),
                    1 => Value::Null(id),
                    _ => return None,
                });
            }
            rel_tuples.push(tuple);
        }
        decls.push((name, arity));
        tuples.push(rel_tuples);
    }
    let schema = Schema::new(decls.iter().map(|(n, a)| (n.as_str(), *a)));
    let mut instance = Instance::empty(&schema);
    for ((name, _), rel_tuples) in decls.iter().zip(tuples) {
        let rel = schema.find(name)?;
        for tuple in rel_tuples {
            instance.insert(rel, tuple);
        }
    }
    Some(instance)
}

/// Encodes a derived record payload. Public so the persist suite can
/// frame payloads with a deliberately wrong digest and prove the
/// fingerprint check drops them.
pub fn encode_derived_payload(key: &str, fp64: u64, instance: &Instance) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.push(KIND_DERIVED);
    put_str(&mut payload, key);
    put_u64(&mut payload, fp64);
    encode_instance(&mut payload, instance);
    payload
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES as usize + payload.len());
    put_u32(&mut out, RECORD_MAGIC);
    put_u32(&mut out, payload.len() as u32);
    put_u64(&mut out, fnv1a(payload));
    out.extend_from_slice(payload);
    out
}

impl DiskTier {
    /// Opens (or creates) the tier at `config.dir`, scanning the segment
    /// and dropping damaged records per the crash-only rules. Open never
    /// fails hard: an unusable directory degrades to an empty tier with
    /// `disk_io_errors` counted.
    pub fn open(config: DiskConfig, registry: Arc<Registry>) -> DiskTier {
        let tier = DiskTier {
            config,
            state: Mutex::new(State { tail: 0, index: HashMap::new(), order: Vec::new() }),
            faults: FaultPlan::default(),
            registry,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            corrupt_dropped: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        };
        if std::fs::create_dir_all(&tier.config.dir).is_err() {
            tier.note_io_error();
            return tier;
        }
        tier.scan();
        tier
    }

    /// The tier's segment file path (tests corrupt it in place).
    pub fn segment_path(&self) -> PathBuf {
        self.config.dir.join(SEGMENT_FILE)
    }

    /// The handle snapshot path.
    pub fn handles_path(&self) -> PathBuf {
        self.config.dir.join(HANDLES_FILE)
    }

    /// Arms `fault` to fire on the `nth` subsequent I/O of its class
    /// (1 = the very next one), once. Modeled on
    /// [`vqd_budget::Budget::trip_after`].
    pub fn arm_fault(&self, fault: DiskFault, nth: u64) {
        self.faults.slot(fault).store(nth, Ordering::Relaxed);
    }

    /// Point-in-time counters.
    pub fn counters(&self) -> DiskCounters {
        DiskCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            spills: self.spills.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            corrupt_dropped: self.corrupt_dropped.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            bytes: self.lock().tail,
        }
    }

    /// Counts a promotion (the RAM tier reinstalled a disk hit).
    pub fn note_promotion(&self) {
        self.promotions.fetch_add(1, Ordering::Relaxed);
        self.registry.counter("cache.disk_promotions").inc();
    }

    /// Whether `key` has a live record on disk.
    pub fn contains(&self, key: &str) -> bool {
        self.lock().index.contains_key(key)
    }

    /// Live derived keys, newest append first (drives warm restore).
    pub fn keys_newest_first(&self) -> Vec<String> {
        let state = self.lock();
        let mut seen = std::collections::HashSet::new();
        let mut keys = Vec::new();
        for key in state.order.iter().rev() {
            if state.index.contains_key(key) && seen.insert(key.clone()) {
                keys.push(key.clone());
            }
        }
        keys
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // The state is a plain offset index over an append-only file;
        // every mutation leaves it consistent, so recover rather than
        // wedge the whole cache behind a poisoned lock.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn note_io_error(&self) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
        self.registry.counter("cache.disk_io_errors").inc();
        // A degrading disk tier is exactly when the recent-request
        // context matters; the dump is rate-limited so a sick disk
        // cannot firehose stderr.
        vqd_obs::flight_dump_throttled("disk_fault");
    }

    fn note_corrupt(&self) {
        self.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
        self.registry.counter("cache.disk_corrupt_dropped").inc();
    }

    fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.registry.counter("cache.disk_misses").inc();
    }

    fn publish_bytes(&self, tail: u64) {
        self.registry.gauge("cache.disk_bytes").set(tail);
    }

    // --- spill (write path) ------------------------------------------

    /// Appends a derived entry. Failures demote to counted no-ops; the
    /// key is indexed only after the record is fully on disk
    /// (spill-then-index).
    pub fn spill(&self, key: &str, index: &IndexedInstance) {
        let payload =
            encode_derived_payload(key, fingerprint_digest(index), index.instance());
        self.append_payload(key, &payload);
    }

    /// Test/fault-injection hook: [`DiskTier::spill`] with an explicit
    /// fingerprint digest, so the suite can plant records whose frame is
    /// valid but whose content does not match its claim.
    #[doc(hidden)]
    pub fn spill_with_digest(&self, key: &str, index: &IndexedInstance, fp64: u64) {
        let payload = encode_derived_payload(key, fp64, index.instance());
        self.append_payload(key, &payload);
    }

    fn append_payload(&self, key: &str, payload: &[u8]) {
        let bytes = frame(payload);
        let mut state = self.lock();
        if state.index.contains_key(key) {
            return; // already persisted; append-only means no rewrite
        }
        let offset = state.tail;
        match self.write_frame(offset, &bytes) {
            Ok(()) => {
                state.tail = offset + bytes.len() as u64;
                state.index.insert(key.to_owned(), (offset, bytes.len() as u64));
                state.order.push(key.to_owned());
                self.spills.fetch_add(1, Ordering::Relaxed);
                self.registry.counter("cache.disk_spills").inc();
                let over_budget = state.tail > self.config.max_bytes;
                let tail = state.tail;
                if over_budget {
                    self.compact(&mut state);
                    self.publish_bytes(state.tail);
                } else {
                    self.publish_bytes(tail);
                }
            }
            Err(_) => {
                // Torn bytes (if any) sit past `tail` and are overwritten
                // by the next append; a restart's scan drops them too.
                self.note_io_error();
            }
        }
    }

    fn write_frame(&self, offset: u64, bytes: &[u8]) -> io::Result<()> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(self.segment_path())?;
        file.seek(SeekFrom::Start(offset))?;
        if self.faults.fires(DiskFault::ShortWrite) {
            let half = bytes.len() / 2;
            file.write_all(&bytes[..half])?;
            return Err(io::Error::other("injected short write"));
        }
        file.write_all(bytes)?;
        if self.faults.fires(DiskFault::Truncate) {
            // The writer believes the append succeeded; the tail of the
            // record never reaches the disk — a crash between syscalls.
            let cut = offset + (bytes.len() as u64) / 2;
            file.set_len(cut)?;
        }
        Ok(())
    }

    // --- load (read path) --------------------------------------------

    /// Loads and verifies a derived entry, rebuilding its index. Any
    /// failure drops the record from the offset index and returns `None`
    /// — a clean miss (re-chase on the caller's side re-spills).
    pub fn load(&self, key: &str) -> Option<Arc<IndexedInstance>> {
        let loc = self.lock().index.get(key).copied();
        let Some((offset, len)) = loc else {
            self.note_miss();
            return None;
        };
        match self.read_and_verify(key, offset, len) {
            Ok(index) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.registry.counter("cache.disk_hits").inc();
                Some(index.into_shared())
            }
            Err(corrupt) => {
                if corrupt {
                    self.note_corrupt();
                } else {
                    self.note_io_error();
                }
                self.lock().index.remove(key);
                self.note_miss();
                None
            }
        }
    }

    /// `Err(true)` = corrupt record, `Err(false)` = I/O failure.
    fn read_and_verify(
        &self,
        key: &str,
        offset: u64,
        len: u64,
    ) -> Result<IndexedInstance, bool> {
        let mut buf = vec![0u8; len as usize];
        let read = (|| -> io::Result<()> {
            let mut file = File::open(self.segment_path())?;
            file.seek(SeekFrom::Start(offset))?;
            if self.faults.fires(DiskFault::ReadError) {
                return Err(io::Error::other("injected read error"));
            }
            file.read_exact(&mut buf)
        })();
        read.map_err(|_| false)?;
        if self.faults.fires(DiskFault::BitFlip) {
            // Key-sampled offset inside the payload region, so the flip
            // is deterministic per key and lands past the header.
            let body = buf.len().saturating_sub(RECORD_HEADER_BYTES as usize);
            if body > 0 {
                let pos = RECORD_HEADER_BYTES as usize
                    + (fnv1a(key.as_bytes()) as usize) % body;
                buf[pos] ^= 1 << (fnv1a(key.as_bytes()) % 8);
            }
        }
        let (payload, _) = Self::check_frame(&buf).ok_or(true)?;
        let mut c = Cursor::new(payload);
        if c.u8() != Some(KIND_DERIVED) {
            return Err(true);
        }
        let stored_key = c.str().ok_or(true)?;
        let stored_fp64 = c.u64().ok_or(true)?;
        let instance = decode_instance(&mut c).ok_or(true)?;
        let rebuilt = IndexedInstance::new(instance);
        // The key and fingerprint must both match the record's claim:
        // a record under the wrong key, or whose content does not
        // reproduce its digest, is re-chase material, not an answer.
        if stored_key != key || fingerprint_digest(&rebuilt) != stored_fp64 {
            return Err(true);
        }
        Ok(rebuilt)
    }

    /// Validates one framed record at the start of `buf`; returns the
    /// payload and the whole-frame length.
    fn check_frame(buf: &[u8]) -> Option<(&[u8], u64)> {
        let mut c = Cursor::new(buf);
        if c.u32()? != RECORD_MAGIC {
            return None;
        }
        let len = c.u32()?;
        if len > MAX_RECORD_BYTES {
            return None;
        }
        let crc = c.u64()?;
        let payload = c.take(len as usize)?;
        if fnv1a(payload) != crc {
            return None;
        }
        Some((payload, RECORD_HEADER_BYTES + u64::from(len)))
    }

    // --- startup scan ------------------------------------------------

    fn scan(&self) {
        let bytes = match std::fs::read(self.segment_path()) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.publish_bytes(0);
                return;
            }
            Err(_) => {
                self.note_io_error();
                return;
            }
        };
        let mut state = self.lock();
        let mut offset = 0u64;
        while (offset + RECORD_HEADER_BYTES) <= bytes.len() as u64 {
            let at = offset as usize;
            let mut c = Cursor::new(&bytes[at..]);
            let magic = c.u32().unwrap_or(0);
            let len = c.u32().unwrap_or(u32::MAX);
            if magic != RECORD_MAGIC || len > MAX_RECORD_BYTES {
                // Frame-level damage: the boundary is unknowable, so the
                // rest of the file is torn tail. Drop it.
                self.note_corrupt();
                break;
            }
            let frame_len = RECORD_HEADER_BYTES + u64::from(len);
            if offset + frame_len > bytes.len() as u64 {
                // Torn tail: the length frame points past EOF.
                self.note_corrupt();
                break;
            }
            match Self::check_frame(&bytes[at..at + frame_len as usize]) {
                Some((payload, _)) => {
                    let mut p = Cursor::new(payload);
                    if p.u8() == Some(KIND_DERIVED) {
                        if let Some(key) = p.str() {
                            // Later records win: same key re-spilled
                            // after a drop supersedes the old offset.
                            state.index.insert(key.clone(), (offset, frame_len));
                            state.order.push(key);
                        } else {
                            self.note_corrupt();
                        }
                    } else {
                        self.note_corrupt();
                    }
                }
                // Bad checksum with an intact length frame: skip this
                // record alone and resync at the next boundary.
                None => self.note_corrupt(),
            }
            offset += frame_len;
        }
        state.tail = offset;
        self.publish_bytes(offset);
    }

    // --- compaction --------------------------------------------------

    /// Rewrites the segment keeping the newest live records that fit in
    /// 3/4 of the byte budget (oldest spill first to go — mirroring the
    /// RAM tier's LRU bias toward recency). Uses tmp + rename so a crash
    /// mid-compaction leaves either the old or the new segment intact.
    fn compact(&self, state: &mut MutexGuard<'_, State>) {
        let target = (self.config.max_bytes / 4).saturating_mul(3).max(1);
        let mut seen = std::collections::HashSet::new();
        let mut keep: Vec<(String, u64, u64)> = Vec::new();
        let mut kept_bytes = 0u64;
        for key in state.order.clone().iter().rev() {
            let Some(&(offset, len)) = state.index.get(key) else { continue };
            if !seen.insert(key.clone()) {
                continue;
            }
            if kept_bytes + len > target && !keep.is_empty() {
                continue; // too old and too big: dropped (re-chase later)
            }
            keep.push((key.clone(), offset, len));
            kept_bytes += len;
        }
        keep.reverse(); // oldest kept record first, preserving order
        type Rebuilt = (HashMap<String, (u64, u64)>, Vec<String>, u64);
        let result = (|| -> io::Result<Rebuilt> {
            let mut old = File::open(self.segment_path())?;
            let tmp_path = self.config.dir.join(format!("{SEGMENT_FILE}.tmp"));
            let mut tmp = File::create(&tmp_path)?;
            let mut index = HashMap::new();
            let mut order = Vec::new();
            let mut tail = 0u64;
            for (key, offset, len) in &keep {
                let mut buf = vec![0u8; *len as usize];
                old.seek(SeekFrom::Start(*offset))?;
                old.read_exact(&mut buf)?;
                tmp.write_all(&buf)?;
                index.insert(key.clone(), (tail, *len));
                order.push(key.clone());
                tail += len;
            }
            tmp.sync_all().ok();
            drop(tmp);
            std::fs::rename(&tmp_path, self.segment_path())?;
            Ok((index, order, tail))
        })();
        match result {
            Ok((index, order, tail)) => {
                state.index = index;
                state.order = order;
                state.tail = tail;
            }
            Err(_) => self.note_io_error(), // old segment stays authoritative
        }
    }

    // --- handle snapshot ---------------------------------------------

    /// Atomically snapshots the handle table (tmp + rename), so a
    /// restarted server resolves pre-restart handles and never reissues
    /// a live handle name. Failures demote to counted no-ops.
    pub fn snapshot_handles(&self, handles: &[(String, HandleEntry)], next_handle: u64) {
        let mut payload = Vec::new();
        payload.push(KIND_HANDLES);
        put_u64(&mut payload, next_handle);
        put_u32(&mut payload, handles.len() as u32);
        for (handle, entry) in handles {
            put_str(&mut payload, handle);
            put_str(&mut payload, &entry.schema);
            put_str(&mut payload, &entry.extent);
            put_str(&mut payload, &entry.fingerprint);
            put_u64(&mut payload, entry.tuples);
        }
        let bytes = frame(&payload);
        let tmp = self.config.dir.join(format!("{HANDLES_FILE}.tmp"));
        let result = (|| -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all().ok();
            drop(f);
            std::fs::rename(&tmp, self.handles_path())
        })();
        if result.is_err() {
            self.note_io_error();
        }
    }

    /// Restores the handle table snapshot, or `None` when absent or
    /// damaged (damage counts `disk_corrupt_dropped`; the table starts
    /// empty and clients re-put — the handle contract already covers
    /// this exact degradation).
    pub fn restore_handles(&self) -> Option<(Vec<(String, HandleEntry)>, u64)> {
        let bytes = match std::fs::read(self.handles_path()) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => {
                self.note_io_error();
                return None;
            }
        };
        let Some((payload, _)) = Self::check_frame(&bytes) else {
            self.note_corrupt();
            return None;
        };
        let mut c = Cursor::new(payload);
        let parsed = (|| {
            if c.u8()? != KIND_HANDLES {
                return None;
            }
            let next_handle = c.u64()?;
            let count = c.u32()?;
            if count > 1 << 20 {
                return None;
            }
            let mut handles = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let handle = c.str()?;
                let schema = c.str()?;
                let extent = c.str()?;
                let fingerprint = c.str()?;
                let tuples = c.u64()?;
                handles.push((handle, HandleEntry { schema, extent, fingerprint, tuples }));
            }
            Some((handles, next_handle))
        })();
        if parsed.is_none() {
            self.note_corrupt();
        }
        parsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vqd-disk-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tier(dir: &Path) -> DiskTier {
        DiskTier::open(DiskConfig::at(dir), Arc::new(Registry::new()))
    }

    fn sample_index(n: u32) -> IndexedInstance {
        let schema = Schema::new([("E", 2usize), ("P", 1usize)]);
        let mut instance = Instance::empty(&schema);
        let e = schema.find("E").unwrap();
        let p = schema.find("P").unwrap();
        for i in 0..n {
            instance.insert(e, vec![Value::Named(i), Value::Null(i + 1)]);
        }
        instance.insert(p, vec![Value::Named(0)]);
        IndexedInstance::new(instance)
    }

    #[test]
    fn spill_load_round_trip_preserves_fingerprint() {
        let dir = temp_dir();
        let t = tier(&dir);
        let idx = sample_index(5);
        t.spill("d:k1", &idx);
        let loaded = t.load("d:k1").expect("hit");
        assert_eq!(loaded.fingerprint(), idx.fingerprint());
        let c = t.counters();
        assert_eq!((c.spills, c.hits, c.misses), (1, 1, 0));
        assert!(c.bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_recovers_spilled_records() {
        let dir = temp_dir();
        {
            let t = tier(&dir);
            t.spill("d:a", &sample_index(3));
            t.spill("d:b", &sample_index(7));
        }
        let t = tier(&dir);
        assert_eq!(t.keys_newest_first(), vec!["d:b".to_owned(), "d:a".to_owned()]);
        assert!(t.load("d:a").is_some());
        assert!(t.load("d:b").is_some());
        assert_eq!(t.counters().corrupt_dropped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_key_is_a_counted_miss() {
        let dir = temp_dir();
        let t = tier(&dir);
        assert!(t.load("d:nope").is_none());
        assert_eq!(t.counters().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_degrades_to_counted_io_error() {
        let dir = temp_dir();
        let t = tier(&dir);
        t.arm_fault(DiskFault::ShortWrite, 1);
        t.spill("d:torn", &sample_index(4));
        let c = t.counters();
        assert_eq!(c.io_errors, 1);
        assert!(!t.contains("d:torn"), "failed spill must not be indexed");
        // The very next append overwrites the torn bytes and works.
        t.spill("d:ok", &sample_index(4));
        assert!(t.load("d:ok").is_some());
        // Reopen: scan must not see the torn prefix as damage (the good
        // record was written over it).
        drop(t);
        let t = tier(&dir);
        assert!(t.load("d:ok").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_error_drops_the_record_and_misses_clean() {
        let dir = temp_dir();
        let t = tier(&dir);
        t.spill("d:x", &sample_index(4));
        t.arm_fault(DiskFault::ReadError, 1);
        assert!(t.load("d:x").is_none());
        let c = t.counters();
        assert_eq!((c.io_errors, c.hits), (1, 0));
        assert!(c.misses >= 1);
        // The record was dropped from the index: the next lookup is a
        // plain miss (re-chase territory), not a retry loop.
        assert!(t.load("d:x").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_detected_by_the_checksum() {
        let dir = temp_dir();
        let t = tier(&dir);
        t.spill("d:x", &sample_index(4));
        t.arm_fault(DiskFault::BitFlip, 1);
        assert!(t.load("d:x").is_none());
        assert_eq!(t.counters().corrupt_dropped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_fault_loses_only_the_tail_record() {
        let dir = temp_dir();
        let t = tier(&dir);
        t.spill("d:good", &sample_index(3));
        t.arm_fault(DiskFault::Truncate, 1);
        t.spill("d:torn", &sample_index(6)); // believes it succeeded
        drop(t);
        let t = tier(&dir);
        assert!(t.load("d:good").is_some(), "records before the tear survive");
        assert!(t.load("d:torn").is_none(), "the torn tail is gone");
        assert!(t.counters().corrupt_dropped >= 1, "the scan counted the tear");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_checksum_record_is_skipped_with_resync() {
        let dir = temp_dir();
        let t = tier(&dir);
        t.arm_fault(DiskFault::Truncate, 1);
        t.spill("d:torn", &sample_index(6));
        // Appending after the tear back-fills the gap (zeros), leaving a
        // record with an intact length frame but a bad checksum.
        t.spill("d:after", &sample_index(3));
        drop(t);
        let t = tier(&dir);
        assert!(t.load("d:torn").is_none());
        assert!(t.load("d:after").is_some(), "scan must resync past the bad record");
        assert!(t.counters().corrupt_dropped >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_corrupt_not_an_answer() {
        let dir = temp_dir();
        let t = tier(&dir);
        let idx = sample_index(4);
        t.spill_with_digest("d:liar", &idx, fingerprint_digest(&idx) ^ 0xdead_beef);
        assert!(t.load("d:liar").is_none(), "a wrong digest can never load");
        assert_eq!(t.counters().corrupt_dropped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_indexes_records_under_their_stored_key() {
        let dir = temp_dir();
        let t = tier(&dir);
        let idx = sample_index(4);
        let payload =
            encode_derived_payload("d:other", fingerprint_digest(&idx), idx.instance());
        let bytes = frame(&payload);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(t.segment_path(), &bytes).unwrap();
        drop(t);
        // The scan trusts only the payload's own key claim, so a
        // hand-written segment resolves under the stored key and under
        // nothing else (the load-time key==stored_key check is the
        // belt to this suspender).
        let t = tier(&dir);
        assert!(t.load("d:other").is_some());
        assert!(t.load("d:else").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handle_snapshot_round_trip_and_corrupt_snapshot_degrades() {
        let dir = temp_dir();
        let t = tier(&dir);
        let entry = HandleEntry {
            schema: "V/2".into(),
            extent: "V(A,B).".into(),
            fingerprint: "fp".into(),
            tuples: 1,
        };
        t.snapshot_handles(&[("h1".into(), entry.clone())], 7);
        let (handles, next) = t.restore_handles().expect("snapshot restored");
        assert_eq!(next, 7);
        assert_eq!(handles, vec![("h1".to_owned(), entry)]);
        // Flip one byte: the restore must degrade to an empty table.
        let mut bytes = std::fs::read(t.handles_path()).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(t.handles_path(), &bytes).unwrap();
        assert!(t.restore_handles().is_none());
        assert!(t.counters().corrupt_dropped >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_keeps_newest_records_under_budget() {
        let dir = temp_dir();
        let registry = Arc::new(Registry::new());
        // Budget small enough that ~2 records overflow it.
        let probe = {
            let t = tier(&dir);
            t.spill("d:probe", &sample_index(8));
            t.counters().bytes
        };
        let _ = std::fs::remove_dir_all(&dir);
        let t = DiskTier::open(
            DiskConfig { dir: dir.clone(), max_bytes: probe * 2 + probe / 2 },
            registry,
        );
        for i in 0..6 {
            t.spill(&format!("d:k{i}"), &sample_index(8));
        }
        let c = t.counters();
        assert!(c.bytes <= probe * 2 + probe / 2, "segment must shrink under budget");
        assert!(t.contains("d:k5"), "the newest record always survives");
        assert!(!t.contains("d:k0"), "the oldest spill goes first");
        assert!(t.load("d:k5").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
