//! Minimal readiness shim over `poll(2)` — std-only, in keeping with
//! the workspace shim policy (no external crates; `std` already links
//! libc on every supported target, so the handful of symbols the event
//! loop needs are declared directly).
//!
//! Three things live here:
//!
//! * [`wait`] — level-triggered readiness over a borrowed
//!   [`PollFd`] slice, the only blocking point of the server's I/O
//!   loops (an idle loop sleeps in the kernel, consuming zero CPU);
//! * [`waker_pair`] — a [`UnixStream`] socketpair that lets worker
//!   completion callbacks (or a shutdown) interrupt a parked `poll`;
//! * small socket/rlimit helpers ([`set_send_buffer`],
//!   [`set_recv_buffer`], [`raise_nofile_limit`]) used to bound
//!   kernel-side buffering deterministically in tests and to let
//!   loadgen hold 1k+ connections under a default 1024 fd soft limit.

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::raw::{c_int, c_ulong, c_void};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// One entry in a `poll(2)` set. Field order and width are fixed by the
/// C ABI (`struct pollfd`): do not reorder.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are ignored by
    /// the kernel, which is useful for holes).
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT` bits).
    pub events: i16,
    /// Returned events; also reports `POLLERR`/`POLLHUP`/`POLLNVAL`
    /// regardless of what was requested.
    pub revents: i16,
}

impl PollFd {
    /// Watches `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }

    /// Whether any of `mask`'s bits came back in `revents`.
    pub fn returned(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }
}

/// Readable (or a peer hangup that a read will observe as EOF).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported).
pub const POLLHUP: i16 = 0x010;
/// Invalid descriptor (always reported).
pub const POLLNVAL: i16 = 0x020;

/// Any condition that means "this connection is finished".
pub const POLLCLOSED: i16 = POLLERR | POLLHUP | POLLNVAL;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

const SOL_SOCKET: c_int = 1;
const SO_SNDBUF: c_int = 7;
const SO_RCVBUF: c_int = 8;
const RLIMIT_NOFILE: c_int = 7;

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

/// Blocks until at least one entry is ready, the timeout elapses
/// (`Ok(0)`), or a signal interrupts the wait (also `Ok(0)`: the caller
/// loops anyway). `None` sleeps indefinitely. Sub-millisecond timeouts
/// round *up* so a near-deadline caller cannot spin at timeout 0.
pub fn wait(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: c_int = match timeout {
        None => -1,
        Some(t) if t.is_zero() => 0,
        Some(t) => {
            let ms = t.as_millis();
            let ms = if ms == 0 { 1 } else { ms };
            ms.min(c_int::MAX as u128) as c_int
        }
    };
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
    if rc < 0 {
        let e = io::Error::last_os_error();
        if e.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(e);
    }
    Ok(rc as usize)
}

/// The write half of a wake pipe. Cloning is cheap (shared fd); waking
/// is a single non-blocking one-byte write, and a full pipe is success
/// (a wake is already pending, which is all a level-triggered poller
/// needs).
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Interrupts the paired [`WakeRx`]'s `poll`.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// The read half of a wake pipe: polled (via [`WakeRx::fd`]) alongside
/// the sockets, drained once readable.
pub struct WakeRx {
    rx: UnixStream,
}

impl WakeRx {
    /// The descriptor to include in the poll set with [`POLLIN`].
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes every pending wake byte (coalescing bursts into one
    /// loop iteration).
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.rx).read(&mut sink) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock: drained
            }
        }
    }
}

/// A connected, non-blocking wake pipe (`UnixStream::pair`, so it stays
/// std-only).
pub fn waker_pair() -> io::Result<(Waker, WakeRx)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx: Arc::new(tx) }, WakeRx { rx }))
}

fn set_buf(fd: RawFd, opt: c_int, bytes: usize) -> io::Result<()> {
    let v: c_int = bytes.min(c_int::MAX as usize) as c_int;
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            opt,
            (&v as *const c_int).cast::<c_void>(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Caps the kernel send buffer of a socket. Bounding it makes "slow
/// reader" behavior deterministic: a stalled peer backs pressure up
/// into the server's own (bounded) write queue instead of megabytes of
/// autotuned kernel buffer.
pub fn set_send_buffer(sock: &impl AsRawFd, bytes: usize) -> io::Result<()> {
    set_buf(sock.as_raw_fd(), SO_SNDBUF, bytes)
}

/// Caps the kernel receive buffer of a socket (shrinks the advertised
/// TCP window when applied before connect).
pub fn set_recv_buffer(sock: &impl AsRawFd, bytes: usize) -> io::Result<()> {
    set_buf(sock.as_raw_fd(), SO_RCVBUF, bytes)
}

/// Raises the soft `RLIMIT_NOFILE` toward `want` (clamped to the hard
/// limit) and returns the resulting soft limit. Lets loadgen hold a
/// thousand client sockets plus the in-process server's accepted ends
/// under environments whose default soft limit is 1024.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut rl = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut rl) } != 0 {
        return 0;
    }
    if rl.cur >= want {
        return rl.cur;
    }
    let target = RLimit { cur: want.min(rl.max), max: rl.max };
    if unsafe { setrlimit(RLIMIT_NOFILE, &target) } == 0 {
        target.cur
    } else {
        rl.cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn waker_interrupts_an_indefinite_poll() {
        let (waker, wake_rx) = waker_pair().expect("pair");
        let handed = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            handed.wake();
        });
        let mut fds = [PollFd::new(wake_rx.fd(), POLLIN)];
        let n = wait(&mut fds, None).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].returned(POLLIN));
        wake_rx.drain();
        // Drained: a short poll now times out instead of spinning.
        let started = Instant::now();
        let mut fds = [PollFd::new(wake_rx.fd(), POLLIN)];
        let n = wait(&mut fds, Some(Duration::from_millis(20))).expect("poll");
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(15));
        t.join().expect("waker thread");
    }

    #[test]
    fn repeated_wakes_coalesce_and_never_block() {
        let (waker, wake_rx) = waker_pair().expect("pair");
        // Far more wakes than the pipe buffers: the excess must be
        // dropped (wake-pending is idempotent), never block.
        for _ in 0..100_000 {
            waker.wake();
        }
        let mut fds = [PollFd::new(wake_rx.fd(), POLLIN)];
        assert_eq!(wait(&mut fds, Some(Duration::from_millis(100))).expect("poll"), 1);
        wake_rx.drain();
        let mut fds = [PollFd::new(wake_rx.fd(), POLLIN)];
        assert_eq!(wait(&mut fds, Some(Duration::ZERO)).expect("poll"), 0);
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_not_to_zero() {
        let (_waker, wake_rx) = waker_pair().expect("pair");
        let started = Instant::now();
        let mut fds = [PollFd::new(wake_rx.fd(), POLLIN)];
        let n = wait(&mut fds, Some(Duration::from_micros(100))).expect("poll");
        assert_eq!(n, 0);
        // Rounded up to 1ms: the call actually slept.
        assert!(started.elapsed() >= Duration::from_micros(500));
    }
}
