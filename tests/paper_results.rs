//! The headline integration test: every experiment table (E1–E14) that
//! the `repro` binary prints must pass. This keeps EXPERIMENTS.md honest —
//! the published tables are regenerated and re-checked on every test run.

use vqd_bench::experiments;

#[test]
fn all_experiments_pass() {
    let reports = experiments::run_all();
    assert_eq!(reports.len(), 17);
    let mut failed = Vec::new();
    for r in &reports {
        println!("{r}");
        if !r.pass {
            failed.push(r.id);
        }
    }
    assert!(failed.is_empty(), "failing experiments: {failed:?}");
}

#[test]
fn run_one_dispatch_matches_ids() {
    for i in 1..=17 {
        let id = format!("e{i}");
        let r = experiments::run_one(&id).expect("known id");
        assert_eq!(r.id.to_lowercase(), id);
    }
    assert!(experiments::run_one("e99").is_none());
}

/// The escalating-retry contract behind `repro --escalate`: starting from
/// a deliberately tiny budget and doubling on every trip must eventually
/// complete each experiment with exactly the verdict an unbudgeted run
/// produces (experiments are seeded, so reruns are deterministic).
#[test]
fn escalating_retry_reaches_the_unbudgeted_verdicts() {
    use vqd_budget::Budget;
    // A fast representative subset: sampling-loop experiments (e5, e17),
    // a tower experiment (e3), and a fixed-scenario one (e15).
    for id in ["e3", "e5", "e15", "e17"] {
        let baseline = experiments::run_one(id).expect("known id");
        let mut steps = 4u64;
        let report = loop {
            let budget = Budget::unlimited().with_step_limit(steps);
            let r = experiments::run_one_budgeted(id, &budget).expect("known id");
            if !r.tripped() {
                break r;
            }
            assert!(steps < 1 << 24, "{id}: still partial at the ceiling");
            steps *= 2;
        };
        assert_eq!(report.pass, baseline.pass, "{id}: escalated verdict differs");
        assert_eq!(report.rows, baseline.rows, "{id}: escalated table differs");
    }
}
