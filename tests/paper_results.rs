//! The headline integration test: every experiment table (E1–E14) that
//! the `repro` binary prints must pass. This keeps EXPERIMENTS.md honest —
//! the published tables are regenerated and re-checked on every test run.

use vqd_bench::experiments;

#[test]
fn all_experiments_pass() {
    let reports = experiments::run_all();
    assert_eq!(reports.len(), 17);
    let mut failed = Vec::new();
    for r in &reports {
        println!("{r}");
        if !r.pass {
            failed.push(r.id);
        }
    }
    assert!(failed.is_empty(), "failing experiments: {failed:?}");
}

#[test]
fn run_one_dispatch_matches_ids() {
    for i in 1..=17 {
        let id = format!("e{i}");
        let r = experiments::run_one(&id).expect("known id");
        assert_eq!(r.id.to_lowercase(), id);
    }
    assert!(experiments::run_one("e99").is_none());
}
