//! Property tests for the FO machinery: classical logical laws under the
//! active-domain evaluator, and the pretty-printer round-trip, over
//! *randomly generated formulas*.

use proptest::prelude::*;
use vqd::eval::eval_fo;
use vqd::instance::gen::InstanceEnumerator;
use vqd::instance::{named, DomainNames, Instance, Schema};
use vqd::query::{alpha_rename, parse_query, Atom, Fo, FoQuery, QueryExpr, Term, VarId};

fn schema() -> Schema {
    Schema::new([("E", 2), ("P", 1)])
}

/// Variable pool used by generated formulas: x0..x3 (quantifiers shadow).
const NVARS: u32 = 4;

fn leaf() -> impl Strategy<Value = Fo> {
    let s = schema();
    let e = s.rel("E");
    let p = s.rel("P");
    prop_oneof![
        (0..NVARS, 0..NVARS).prop_map(move |(a, b)| Fo::Atom(Atom::new(
            e,
            vec![Term::Var(VarId(a)), Term::Var(VarId(b))]
        ))),
        (0..NVARS).prop_map(move |a| Fo::Atom(Atom::new(p, vec![Term::Var(VarId(a))]))),
        (0..NVARS, 0..NVARS)
            .prop_map(|(a, b)| Fo::Eq(Term::Var(VarId(a)), Term::Var(VarId(b)))),
    ]
}

fn arb_fo() -> impl Strategy<Value = Fo> {
    leaf().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| Fo::Not(Box::new(f))),
            proptest::collection::vec(inner.clone(), 2..=3).prop_map(Fo::And),
            proptest::collection::vec(inner.clone(), 2..=3).prop_map(Fo::Or),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Fo::Implies(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Fo::Iff(Box::new(a), Box::new(b))),
            (0..NVARS, inner.clone())
                .prop_map(|(v, f)| Fo::Exists(vec![VarId(v)], Box::new(f))),
            (0..NVARS, inner).prop_map(|(v, f)| Fo::Forall(vec![VarId(v)], Box::new(f))),
        ]
    })
}

/// Closes a generated formula into a sentence-or-query by declaring all
/// its free variables as the head.
fn close(f: Fo) -> FoQuery {
    let free: Vec<VarId> = f.free_vars().into_iter().collect();
    FoQuery::new(
        &schema(),
        free,
        f,
        (0..NVARS).map(|i| format!("x{i}")).collect(),
    )
}

fn small_instances() -> Vec<Instance> {
    // A fixed diverse set (full enumeration per case is too slow under
    // 64×: empty, loop, edge, triangle-ish, with/without P).
    let s = schema();
    let mut out = Vec::new();
    out.push(Instance::empty(&s));
    let mut d = Instance::empty(&s);
    d.insert_named("E", vec![named(0), named(0)]);
    out.push(d.clone());
    d.insert_named("E", vec![named(0), named(1)]);
    d.insert_named("P", vec![named(1)]);
    out.push(d.clone());
    d.insert_named("E", vec![named(1), named(0)]);
    d.insert_named("P", vec![named(0)]);
    out.push(d);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Double negation is a no-op.
    #[test]
    fn double_negation(f in arb_fo()) {
        let q1 = close(f.clone());
        let q2 = close(Fo::Not(Box::new(Fo::Not(Box::new(f)))));
        for d in small_instances() {
            prop_assert_eq!(eval_fo(&q1, &d), eval_fo(&q2, &d));
        }
    }

    /// NNF and desugaring preserve semantics.
    #[test]
    fn normal_forms_preserve_semantics(f in arb_fo()) {
        let q = close(f.clone());
        let qn = FoQuery { formula: f.nnf(), ..q.clone() };
        let qd = FoQuery { formula: f.desugar(), ..q.clone() };
        for d in small_instances() {
            let reference = eval_fo(&q, &d);
            prop_assert_eq!(&eval_fo(&qn, &d), &reference, "nnf broke semantics");
            prop_assert_eq!(&eval_fo(&qd, &d), &reference, "desugar broke semantics");
        }
    }

    /// Quantifier duality: ∀x f ≡ ¬∃x ¬f.
    #[test]
    fn quantifier_duality(f in arb_fo(), v in 0..NVARS) {
        let x = VarId(v);
        let q1 = close(Fo::Forall(vec![x], Box::new(f.clone())));
        let q2 = close(Fo::Not(Box::new(Fo::Exists(
            vec![x],
            Box::new(Fo::Not(Box::new(f)))),
        )));
        for d in small_instances() {
            prop_assert_eq!(eval_fo(&q1, &d), eval_fo(&q2, &d));
        }
    }

    /// De Morgan over n-ary connectives.
    #[test]
    fn de_morgan(fs in proptest::collection::vec(arb_fo(), 2..=3)) {
        let q1 = close(Fo::Not(Box::new(Fo::And(fs.clone()))));
        let q2 = close(Fo::Or(
            fs.iter().cloned().map(|f| Fo::Not(Box::new(f))).collect(),
        ));
        for d in small_instances() {
            prop_assert_eq!(eval_fo(&q1, &d), eval_fo(&q2, &d));
        }
    }

    /// α-renaming preserves semantics, and the renamed query's rendering
    /// parses back to something with the same answers.
    #[test]
    fn render_parse_roundtrip(f in arb_fo()) {
        let q = close(f);
        let renamed = alpha_rename(&q);
        let rendered = renamed.render("Q");
        let mut names = DomainNames::new();
        let parsed = parse_query(&schema(), &mut names, &rendered)
            .unwrap_or_else(|e| panic!("`{rendered}` fails to parse: {e}"));
        let QueryExpr::Fo(back) = parsed else { panic!("expected FO") };
        for d in small_instances() {
            let reference = eval_fo(&q, &d);
            prop_assert_eq!(&eval_fo(&renamed, &d), &reference, "alpha rename broke {}", rendered.clone());
            // The parser may order the free variables differently; compare
            // after aligning head order by name.
            prop_assert_eq!(back.free.len(), renamed.free.len());
            let out_back = eval_fo(&back, &d);
            let renamed_names: Vec<String> =
                renamed.free.iter().map(|v| renamed.var_name(*v)).collect();
            let back_names: Vec<String> =
                back.free.iter().map(|v| back.var_name(*v)).collect();
            if renamed_names == back_names {
                prop_assert_eq!(&out_back, &reference, "roundtrip broke {}", rendered.clone());
            } else {
                // Same multiset of columns, permuted: compare cardinality
                // (a full column-permutation check would need a reorder
                // helper; names almost always align in practice).
                prop_assert_eq!(out_back.len(), reference.len());
            }
        }
    }
}

#[test]
fn exhaustive_law_check_small() {
    // One non-random pass over the full instance space for a fixed
    // formula, to anchor the sampled checks above.
    let s = schema();
    let mut names = DomainNames::new();
    let QueryExpr::Fo(q) = parse_query(
        &s,
        &mut names,
        "Q(x) := forall y. (E(x,y) -> exists z. (E(y,z) & ~P(z))).",
    )
    .unwrap() else {
        panic!()
    };
    let qn = FoQuery { formula: q.formula.nnf(), ..q.clone() };
    for d in InstanceEnumerator::new(&s, 2) {
        assert_eq!(eval_fo(&q, &d), eval_fo(&qn, &d));
    }
}
