//! Integration suite for the `vqd-server` serving layer.
//!
//! Every test spawns a real server on an ephemeral port and talks to it
//! over TCP through the blocking [`Client`], asserting the service
//! contract end to end:
//!
//! * concurrent clients get correct, independently-budgeted verdicts;
//! * malformed input degrades to structured protocol errors on a
//!   connection that stays usable;
//! * an over-budget request degrades to `exhausted` with work-done
//!   stats rather than a hang or a dropped connection;
//! * a full bounded queue rejects with `overloaded` instead of
//!   buffering;
//! * graceful shutdown cancels in-flight work cleanly, and the same
//!   request on a fresh server reproduces the baseline verdict.

use std::time::Duration;
use vqd::server::{
    self, Client, ErrorKind, Limits, Outcome, Request, ServerCaps, ServerConfig,
};

fn server(workers: usize, queue_depth: usize) -> server::ServerHandle {
    server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth,
        caps: ServerCaps::default(),
    })
    .expect("spawn server")
}

/// `k`-path views determine the `m`-path query iff `k` divides `m`.
fn decide_paths(k: usize, m: usize) -> Request {
    let path = |n: usize, head: &str| {
        let body: Vec<String> = (0..n).map(|i| format!("E(x{i},x{})", i + 1)).collect();
        format!("{head}(x0,x{n}) :- {}.", body.join(", "))
    };
    Request::Decide {
        schema: "E/2".to_owned(),
        views: path(k, "V"),
        query: path(m, "Q"),
    }
}

/// A scan that must exhaust its whole space (identity views determine
/// everything, so no counterexample ever short-circuits it). `domain` 3
/// finishes in tens of milliseconds; `domain` 4 runs for seconds —
/// the reliable "slow request" for budget/cancellation tests.
fn exhaustive_scan(domain: u64, space_limit: u64) -> Request {
    Request::Semantic {
        schema: "E/2".to_owned(),
        views: "V(x,y) :- E(x,y).".to_owned(),
        query: "Q(x,z) :- E(x,y), E(y,z).".to_owned(),
        domain,
        space_limit,
    }
}

/// A three-relation exhaustive scan: 2^15 instances at domain 3, which
/// takes on the order of seconds in debug builds — long enough that a
/// shutdown issued 150ms in reliably lands mid-request — yet completes
/// with a definite `no-counterexample` verdict when left alone.
fn medium_scan() -> Request {
    Request::Semantic {
        schema: "E/2,P/1,R/1".to_owned(),
        views: "V(x,y) :- E(x,y). W(x) :- P(x). U(x) :- R(x).".to_owned(),
        query: "Q(x,z) :- E(x,y), E(y,z), P(x), R(z).".to_owned(),
        domain: 3,
        space_limit: 1 << 20,
    }
}

#[test]
fn concurrent_clients_get_correct_verdicts() {
    let handle = server(4, 64);
    let addr = handle.addr();
    let threads: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..3 {
                    // Alternate a determined pair (2 | 4) and an
                    // undetermined one (2 ∤ 3) across threads/rounds.
                    let determined = (i + round) % 2 == 0;
                    let request = if determined {
                        decide_paths(2, 4)
                    } else {
                        decide_paths(2, 3)
                    };
                    let limits =
                        Limits { deadline_ms: Some(5_000), ..Limits::none() };
                    let reply = client.call(limits, request).expect("call");
                    match reply.outcome {
                        Outcome::Decided { determined: got, rewriting } => {
                            assert_eq!(got, determined, "thread {i} round {round}");
                            assert_eq!(rewriting.is_some(), determined);
                        }
                        other => panic!("unexpected outcome: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let m = handle.shutdown();
    assert_eq!(m.completed_ok, 24);
    assert_eq!(m.errors, 0);
}

#[test]
fn malformed_json_gets_a_structured_error_and_the_connection_survives() {
    let handle = server(2, 16);
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Not JSON at all.
    let reply = client.call_raw("{this is not json").expect("raw call");
    assert!(matches!(
        &reply.outcome,
        Outcome::Error { kind: ErrorKind::Protocol, .. }
    ));

    // Valid JSON, wrong version.
    let reply = client
        .call_raw(r#"{"v":99,"id":"x","request":{"op":"ping"}}"#)
        .expect("raw call");
    assert!(matches!(&reply.outcome, Outcome::Error { kind: ErrorKind::Version, .. }));
    assert_eq!(reply.id, "x", "recoverable ids are echoed even on errors");

    // Unknown operation.
    let reply = client
        .call_raw(r#"{"v":1,"id":"y","request":{"op":"frobnicate"}}"#)
        .expect("raw call");
    assert!(matches!(
        &reply.outcome,
        Outcome::Error { kind: ErrorKind::Unsupported, .. }
    ));

    // Unparseable query payload.
    let reply = client
        .call(
            Limits::none(),
            Request::Decide {
                schema: "E/2".to_owned(),
                views: "V(x,y) :- E(x,y).".to_owned(),
                query: "Q(x :- oops".to_owned(),
            },
        )
        .expect("call");
    assert!(matches!(&reply.outcome, Outcome::Error { kind: ErrorKind::Parse, .. }));

    // The same connection still serves real work.
    assert!(client.ping().expect("ping"));
    let m = handle.shutdown();
    assert!(m.errors >= 4);
}

#[test]
fn over_budget_requests_degrade_to_exhausted_with_stats() {
    let handle = server(2, 16);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let reply = client
        .call(
            Limits { deadline_ms: Some(60), ..Limits::none() },
            exhaustive_scan(4, 1 << 20),
        )
        .expect("call");
    match &reply.outcome {
        Outcome::Exhausted { reason, partial } => {
            assert!(!reason.is_empty());
            assert!(!partial.is_empty(), "partial progress must be described");
        }
        other => panic!("expected exhausted, got {other:?}"),
    }
    assert!(reply.work.steps > 0, "work-done stats must be reported");
    // A step limit trips the same way.
    let reply = client
        .call(
            Limits { step_limit: Some(10), ..Limits::none() },
            exhaustive_scan(3, 1 << 20),
        )
        .expect("call");
    assert!(matches!(&reply.outcome, Outcome::Exhausted { .. }));
    let m = handle.shutdown();
    assert_eq!(m.exhausted, 2);
}

#[test]
fn a_full_queue_rejects_with_overloaded() {
    // One worker, queue depth one: with eight concurrent slow requests
    // at most two can be in the system, so admission control must turn
    // the rest away instantly.
    let handle = server(1, 1);
    let addr = handle.addr();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let reply = client
                    .call(
                        Limits { deadline_ms: Some(400), ..Limits::none() },
                        exhaustive_scan(4, 1 << 20),
                    )
                    .expect("call");
                match reply.outcome {
                    Outcome::Overloaded { queue_capacity, .. } => {
                        assert_eq!(queue_capacity, 1);
                        (1u32, 0u32)
                    }
                    // Admitted requests run out of their 400ms deadline.
                    Outcome::Exhausted { .. } => (0, 1),
                    other => panic!("unexpected outcome: {other:?}"),
                }
            })
        })
        .collect();
    let (mut overloaded, mut exhausted) = (0, 0);
    for t in threads {
        let (o, e) = t.join().expect("client thread");
        overloaded += o;
        exhausted += e;
    }
    assert!(overloaded > 0, "some requests must be rejected");
    assert!(exhausted > 0, "admitted requests must still run");
    let m = handle.shutdown();
    assert_eq!(u64::from(overloaded), m.rejected);
    // The depth metric may transiently count a job a worker has popped
    // but not yet marked dequeued; real boundedness is the channel's
    // capacity. It must still stay far below the offered load of 8.
    assert!(m.max_queue_depth <= 3, "queue grew past its bound: {}", m.max_queue_depth);
}

#[test]
fn shutdown_cancels_in_flight_work_and_a_retry_reproduces_the_verdict() {
    let slow = medium_scan();
    let handle = server(2, 16);
    let addr = handle.addr();
    let in_flight = {
        let slow = slow.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client.call(Limits::none(), slow).expect("call")
        })
    };
    std::thread::sleep(Duration::from_millis(150));
    let metrics = handle.shutdown();
    let reply = in_flight.join().expect("client thread");
    match &reply.outcome {
        Outcome::Exhausted { reason, .. } => {
            assert!(reason.contains("cancel"), "reason was `{reason}`");
        }
        other => panic!("expected canceled-exhausted, got {other:?}"),
    }
    assert!(reply.work.steps > 0, "partial progress must be reported");
    assert_eq!(metrics.exhausted, 1);

    // The identical request on a fresh server (with a roomier deadline
    // cap for slow CI machines) completes and reproduces the baseline
    // verdict: identity views determine everything, so the exhaustive
    // scan finds no counterexample.
    let handle = server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 16,
        caps: ServerCaps { max_deadline: Duration::from_secs(120), ..ServerCaps::default() },
    })
    .expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let reply = client.call(Limits::none(), slow).expect("retry");
    match &reply.outcome {
        Outcome::SemanticOutcome { verdict, bound, .. } => {
            assert_eq!(verdict, "no-counterexample");
            assert_eq!(*bound, Some(3));
        }
        other => panic!("expected a semantic verdict, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn certain_answers_and_stats_over_the_wire() {
    let handle = server(2, 16);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let reply = client
        .call(
            Limits::none(),
            Request::Certain {
                schema: "E/2".to_owned(),
                views: "V(x,y) :- E(x,y).".to_owned(),
                query: "Q(x,z) :- E(x,y), E(y,z).".to_owned(),
                extent: "V(A,B). V(B,C).".to_owned(),
            },
        )
        .expect("call");
    match &reply.outcome {
        Outcome::CertainAnswers { count, answers } => {
            assert_eq!(*count, 1);
            assert!(answers.contains('A') && answers.contains('C'), "{answers}");
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.workers, 2);
    assert!(stats.accepted >= 1);
    handle.shutdown();
}

/// Regression guard for per-request stat attribution: two identical
/// requests issued *sequentially on one connection* (so they land on
/// the same worker thread, whose thread-local counters keep growing)
/// must report identical per-request work and profiles. A diffing bug
/// that leaked the first request's counters into the second would make
/// the second strictly larger.
#[test]
fn sequential_requests_on_one_connection_get_independent_stats() {
    let handle = server(1, 16);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let request = || Request::Certain {
        schema: "E/2".to_owned(),
        views: "V(x,y) :- E(x,z), E(z,y).".to_owned(),
        query: "Q(x,y) :- E(x,z), E(z,y).".to_owned(),
        extent: "V(A,B). V(B,C). V(C,D).".to_owned(),
    };
    let first = client.call_profiled(Limits::none(), request()).expect("first call");
    let second = client.call_profiled(Limits::none(), request()).expect("second call");
    assert!(
        matches!(first.outcome, Outcome::CertainAnswers { .. }),
        "got {:?}",
        first.outcome
    );
    assert_eq!(first.outcome, second.outcome);
    assert!(first.work.index_builds > 0, "the chase must build an index");
    assert_eq!(
        first.work.index_builds, second.work.index_builds,
        "index work leaked across requests"
    );
    assert_eq!(
        first.work.index_tuples, second.work.index_tuples,
        "index tuple counts leaked across requests"
    );
    let p1 = first.profile.expect("profile requested");
    let p2 = second.profile.expect("profile requested");
    assert!(!p1.is_zero(), "chase work must appear in the profile");
    assert_eq!(p1, p2, "engine counter deltas leaked across requests");
    handle.shutdown();
}

#[test]
fn slow_clients_get_a_typed_timeout_and_are_disconnected() {
    use std::io::{Read as _, Write as _};
    let handle = server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 16,
        caps: ServerCaps {
            conn_read_timeout: Duration::from_millis(200),
            ..ServerCaps::default()
        },
    })
    .expect("spawn server");

    // A well-behaved client on the same server is unaffected.
    let mut ok_client = Client::connect(handle.addr()).expect("connect");
    assert!(ok_client.ping().expect("ping"));

    // The slow client sends half a request line and then stalls.
    let mut slow = std::net::TcpStream::connect(handle.addr()).expect("connect slow");
    slow.write_all(b"{\"v\":1,\"id\":\"stall\"").expect("partial write");
    slow.flush().expect("flush");
    slow.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut reply = String::new();
    slow.read_to_string(&mut reply).expect("read reply until server closes");
    let line = reply.lines().next().expect("one reply line before the drop");
    let response = server::Response::from_line(line).expect("parseable reply");
    assert!(
        matches!(&response.outcome, Outcome::Error { kind: ErrorKind::Timeout, .. }),
        "{response:?}"
    );
    // read_to_string returning means the server closed the connection.
    assert_eq!(handle.registry().counter("server.conn_timeouts").get(), 1);

    // The healthy connection still works afterwards.
    assert!(ok_client.ping().expect("ping after slow client dropped"));
    handle.shutdown();
}

#[test]
fn worker_panic_is_contained_to_a_typed_internal_error() {
    let handle = server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 16,
        caps: ServerCaps { enable_debug_ops: true, ..ServerCaps::default() },
    })
    .expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let reply = client.call(Limits::none(), Request::DebugPanic).expect("debug_panic");
    assert!(
        matches!(&reply.outcome, Outcome::Error { kind: ErrorKind::Internal, .. }),
        "{reply:?}"
    );
    assert_eq!(handle.registry().counter("server.worker_panics").get(), 1);
    // Containment: the same connection — and therefore the same single
    // worker that just panicked — keeps serving real work.
    assert!(client.ping().expect("ping after panic"));
    let verdict = client.call(Limits::none(), decide_paths(2, 4)).expect("decide");
    assert!(
        matches!(verdict.outcome, Outcome::Decided { determined: true, .. }),
        "{verdict:?}"
    );
    handle.shutdown();
}

#[test]
fn debug_panic_is_refused_unless_explicitly_enabled() {
    let handle = server(1, 16);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let reply = client.call(Limits::none(), Request::DebugPanic).expect("debug_panic");
    assert!(
        matches!(&reply.outcome, Outcome::Error { kind: ErrorKind::Unsupported, .. }),
        "{reply:?}"
    );
    assert_eq!(handle.registry().counter("server.worker_panics").get(), 0);
    handle.shutdown();
}

#[test]
fn wire_shutdown_request_drains_the_server() {
    let handle = server(2, 16);
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert!(client.ping().expect("ping"));
    assert!(client.shutdown_server().expect("shutdown request"));
    // `wait` observes the tripped token and drains without hanging.
    let m = handle.wait();
    assert!(m.completed_ok >= 2);
}
