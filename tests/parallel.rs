//! Integration suite for intra-request parallel evaluation: the
//! `ExecCtx` engine API, the work-sharing executor behind it, and the
//! additive wire surface that exposes it.
//!
//! Covers, end to end:
//!
//! * **Determinism** — certain answers, CQ evaluation on a seeded
//!   random corpus, and the semantic counterexample scan are
//!   byte-identical between a sequential context and every parallel
//!   width, including how exhaustion surfaces;
//! * **Unification** — a bare `&Budget`, `ExecCtx::sequential`, a
//!   parallelism-1 context, and the deprecated `*_budgeted` /
//!   `*_parallel` spellings all produce the same bytes;
//! * **Governance** — a fault-injection sweep trips the shared budget
//!   at sampled checkpoints under parallel contexts: no panic, a
//!   structured `Exhausted` with exact (certain) or tightly bounded
//!   (sharded scan) step accounting, and a retry with headroom
//!   reproduces the sequential baseline;
//! * **Observability** — engine counters absorbed from foreign shards
//!   keep the parallel profile exactly equal to the sequential twin
//!   (modulo the per-shard root-exhaustion bookkeeping the sharded
//!   hom search documents), and budget checkpoints stay exact;
//! * **Wire** — a server spawned with `engine_threads` clamps the
//!   envelope's requested `parallelism` and reports honest
//!   `threads_used` in the work envelope, with outcomes identical to
//!   a sequential request.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vqd::budget::{Budget, ExhaustReason, VqdError};
use vqd::chase::CqViews;
use vqd::core::certain::{certain_sound_budgeted, certain_sound_ctx};
use vqd::core::determinacy::{
    check_exhaustive_budgeted, check_exhaustive_ctx, check_exhaustive_parallel_budgeted,
    verify_counterexample, SemanticVerdict,
};
use vqd::eval::{apply_views, eval_cq_ctx};
use vqd::exec::ExecCtx;
use vqd::instance::{named, DomainNames, Instance, Relation, Schema};
use vqd::obs::{Metric, MetricsSnapshot};
use vqd::query::{parse_program, parse_query, Cq, QueryExpr, ViewSet};
use vqd::server::{self, Client, Envelope, Limits, Request, ServerCaps, ServerConfig};
use vqd_bench::genq::{path_query, path_views, random_cq, CqGen};

/// Parallel widths every determinism assertion is swept over.
const WIDTHS: [usize; 4] = [2, 3, 4, 8];

/// Cap on distinct trip points per fault sweep (strided sampling).
const MAX_TRIP_POINTS: u64 = 12;

fn schema() -> Schema {
    Schema::new([("E", 2), ("P", 1)])
}

fn chain(s: &Schema, n: u32) -> Instance {
    let mut d = Instance::empty(s);
    for i in 0..n {
        d.insert_named("E", vec![named(i), named(i + 1)]);
    }
    d
}

fn random_graph(s: &Schema, n: u32, edges: usize, rng: &mut StdRng) -> Instance {
    let mut d = Instance::empty(s);
    for _ in 0..edges {
        d.insert_named("E", vec![named(rng.gen_range(0..n)), named(rng.gen_range(0..n))]);
    }
    for v in 0..n {
        if rng.gen_bool(0.5) {
            d.insert_named("P", vec![named(v)]);
        }
    }
    d
}

/// The certain-answer workhorse: 2-path views over a chain, 3-path
/// query — chases to a canonical database with nulls, so the final
/// evaluation (the part that fans out) does real backtracking work.
fn certain_workload(s: &Schema, m: u32) -> (CqViews, Cq, Instance) {
    let views = path_views(s, 2);
    let extent = apply_views(views.as_view_set(), &chain(s, 2 * m));
    (views, path_query(s, 3), extent)
}

fn semantic_workload(view_src: &str, q_src: &str) -> (ViewSet, QueryExpr) {
    let s = Schema::new([("E", 2)]);
    let mut names = DomainNames::new();
    let prog = parse_program(&s, &mut names, view_src).expect("views parse");
    let views = ViewSet::new(&s, prog.defs);
    let q = parse_query(&s, &mut names, q_src).expect("query parse");
    (views, q)
}

/// Checkpoint indices `1..=total`, strided down to at most
/// [`MAX_TRIP_POINTS`] samples.
fn trip_points(total: u64) -> impl Iterator<Item = u64> {
    let stride = total.div_ceil(MAX_TRIP_POINTS).max(1);
    (1..=total).step_by(stride as usize)
}

/// Engine-counter delta of `f`, as observed by the calling thread —
/// which is exactly what a request profile is.
fn engine_delta(f: impl FnOnce()) -> MetricsSnapshot {
    let before = MetricsSnapshot::capture();
    f();
    MetricsSnapshot::capture().diff(&before)
}

// ---------------------------------------------------------------------
// Determinism: parallel ≡ sequential, byte for byte.
// ---------------------------------------------------------------------

#[test]
fn parallel_certain_answers_are_byte_identical_to_sequential() {
    let s = schema();
    for m in [5u32, 13] {
        let (views, q, extent) = certain_workload(&s, m);
        let seq = certain_sound_ctx(&views, &q, &extent, &Budget::unlimited())
            .expect("sequential certain");
        for p in WIDTHS {
            let cx = ExecCtx::with_parallelism(Budget::unlimited(), p);
            let par = certain_sound_ctx(&views, &q, &extent, &cx)
                .expect("parallel certain");
            assert_eq!(par, seq, "m={m} parallelism={p}");
            assert_eq!(
                cx.threads_used(),
                p as u64,
                "m={m}: the final evaluation must fan out at width {p}"
            );
        }
    }
}

#[test]
fn parallel_eval_agrees_on_a_random_corpus() {
    let s = schema();
    let mut rng = StdRng::seed_from_u64(11);
    for case in 0..25 {
        let d = random_graph(&s, 6, 14, &mut rng);
        let q = random_cq(&s, CqGen { atoms: 3, vars: 4, max_head: 2 }, &mut rng);
        let seq = eval_cq_ctx(&q, &d, &Budget::unlimited()).expect("sequential eval");
        for p in WIDTHS {
            let cx = ExecCtx::with_parallelism(Budget::unlimited(), p);
            let par = eval_cq_ctx(&q, &d, &cx).expect("parallel eval");
            assert_eq!(par, seq, "case {case} parallelism={p}");
        }
    }
}

#[test]
fn parallel_semantic_scan_agrees_with_sequential() {
    // Positive: the identity view determines everything — every width
    // must scan the whole space and agree.
    let (v, q) = semantic_workload("V(x,y) :- E(x,y).", "Q(x,z) :- E(x,y), E(y,z).");
    let seq = check_exhaustive_budgeted(&v, &q, 3, 1 << 26, &Budget::unlimited())
        .expect("sequential scan");
    assert!(matches!(seq, SemanticVerdict::NoCounterexampleUpTo(3)));
    for p in WIDTHS {
        let cx = ExecCtx::with_parallelism(Budget::unlimited(), p);
        let par = check_exhaustive_ctx(&v, &q, 3, 1 << 26, &cx).expect("parallel scan");
        assert!(
            matches!(par, SemanticVerdict::NoCounterexampleUpTo(3)),
            "parallelism={p}: {par:?}"
        );
    }
    // Negative: determinacy fails. Which witness a shard reaches first
    // is scheduling-dependent; what is contractual is the verdict and
    // that the witness actually refutes determinacy.
    let (v, q) = semantic_workload(
        "V(x,y) :- E(x,z), E(z,y).",
        "Q(x,y) :- E(x,a), E(a,b), E(b,y).",
    );
    let seq = check_exhaustive_budgeted(&v, &q, 3, 1 << 26, &Budget::unlimited())
        .expect("sequential scan");
    assert!(matches!(seq, SemanticVerdict::NotDetermined(_)));
    for p in WIDTHS {
        let cx = ExecCtx::with_parallelism(Budget::unlimited(), p);
        match check_exhaustive_ctx(&v, &q, 3, 1 << 26, &cx).expect("parallel scan") {
            SemanticVerdict::NotDetermined(c) => {
                assert!(verify_counterexample(&v, &q, &c), "parallelism={p}");
            }
            other => panic!("parallelism={p}: expected a counterexample, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Unification: one API, many spellings, same bytes.
// ---------------------------------------------------------------------

#[test]
fn sequential_spellings_and_deprecated_wrappers_agree() {
    let s = schema();
    let (views, q, extent) = certain_workload(&s, 7);
    let bare = certain_sound_ctx(&views, &q, &extent, &Budget::unlimited()).unwrap();
    let seq_cx = certain_sound_ctx(
        &views,
        &q,
        &extent,
        &ExecCtx::sequential(Budget::unlimited()),
    )
    .unwrap();
    assert_eq!(seq_cx, bare, "ExecCtx::sequential must equal a bare budget");
    // A parallelism-1 context never fans out and reports that honestly.
    let one = ExecCtx::with_parallelism(Budget::unlimited(), 1);
    assert_eq!(certain_sound_ctx(&views, &q, &extent, &one).unwrap(), bare);
    assert_eq!(one.threads_used(), 0, "width 1 is sequential: no fan-out");
    // The historical `_budgeted` spelling is a thin wrapper.
    let old = certain_sound_budgeted(&views, &q, &extent, &Budget::unlimited()).unwrap();
    assert_eq!(old, bare);
    // The historical explicit-thread-count scan entry point agrees with
    // the context-carrying one at every width.
    let (v, sq) = semantic_workload("V(x,y) :- E(x,y).", "Q(x,z) :- E(x,y), E(y,z).");
    let ctx_verdict = check_exhaustive_ctx(&v, &sq, 2, 1 << 22, &Budget::unlimited()).unwrap();
    for threads in [1usize, 2, 4] {
        let old =
            check_exhaustive_parallel_budgeted(&v, &sq, 2, 1 << 22, threads, &Budget::unlimited())
                .unwrap();
        assert_eq!(
            format!("{old:?}"),
            format!("{ctx_verdict:?}"),
            "threads={threads}"
        );
    }
}

// ---------------------------------------------------------------------
// Governance: the shared budget trips cleanly under parallelism.
// ---------------------------------------------------------------------

#[test]
fn budget_trips_surface_identically_in_parallel_certain() {
    let s = schema();
    let (views, q, extent) = certain_workload(&s, 9);
    let probe = Budget::unlimited();
    certain_sound_ctx(&views, &q, &extent, &probe).expect("probe run");
    let total = probe.steps();
    assert!(total > 1, "workload too small to trip mid-run");
    // Certain checkpoints live in the sequential sections (chase and
    // the null filter); the fanned-out evaluation draws no steps. So a
    // step limit must produce the *identical* structured outcome —
    // reason, exact step count, and progress message — at every width.
    let limit = total / 2;
    let trip = |cx: &dyn Fn() -> Result<Relation, VqdError>| match cx() {
        Err(VqdError::Exhausted(e)) => e,
        other => panic!("step limit {limit} must trip, got {other:?}"),
    };
    let seq_budget = Budget::unlimited().with_step_limit(limit);
    let seq = trip(&|| certain_sound_ctx(&views, &q, &extent, &seq_budget));
    assert_eq!(seq.reason, ExhaustReason::StepLimit);
    assert_eq!(seq.work_done.steps, limit);
    for p in [2usize, 4] {
        let cx = ExecCtx::with_parallelism(Budget::unlimited().with_step_limit(limit), p);
        let par = trip(&|| certain_sound_ctx(&views, &q, &extent, &cx));
        assert_eq!(par.reason, seq.reason, "parallelism={p}");
        assert_eq!(par.work_done.steps, seq.work_done.steps, "parallelism={p}");
        assert_eq!(par.partial, seq.partial, "parallelism={p}");
    }
}

#[test]
fn parallel_fault_sweep_certain() {
    let s = schema();
    let (views, q, extent) = certain_workload(&s, 6);
    let probe = Budget::unlimited();
    let baseline = certain_sound_ctx(&views, &q, &extent, &probe).expect("probe run");
    let total = probe.steps();
    assert!(total > 0, "engine reached no checkpoints — it is ungoverned");
    for p in [2usize, 4] {
        for n in trip_points(total) {
            let cx = ExecCtx::with_parallelism(Budget::unlimited().trip_after(n), p);
            match certain_sound_ctx(&views, &q, &extent, &cx) {
                Err(VqdError::Exhausted(e)) => {
                    assert_eq!(
                        e.reason,
                        ExhaustReason::FaultInjected,
                        "p={p} trip {n}/{total}: wrong reason"
                    );
                    assert_eq!(
                        e.work_done.steps,
                        n - 1,
                        "p={p} trip {n}/{total}: misreported completed work"
                    );
                    assert!(!e.partial.is_empty(), "p={p} trip {n}/{total}: lost progress");
                }
                other => panic!("p={p} trip {n}/{total}: expected Exhausted, got {other:?}"),
            }
        }
        // Headroom restored: the same parallel context shape reproduces
        // the sequential baseline byte for byte.
        let retry = ExecCtx::with_parallelism(Budget::unlimited(), p);
        assert_eq!(
            certain_sound_ctx(&views, &q, &extent, &retry).expect("retry"),
            baseline,
            "p={p}: retry after faults must reproduce the baseline"
        );
    }
}

#[test]
fn parallel_fault_sweep_semantic_scan() {
    let (v, q) = semantic_workload("V(x,y) :- E(x,y).", "Q(x,z) :- E(x,y), E(y,z).");
    let probe = Budget::unlimited();
    check_exhaustive_budgeted(&v, &q, 3, 1 << 26, &probe).expect("probe scan");
    let total = probe.steps();
    assert!(total > 0, "scan reached no checkpoints — it is ungoverned");
    for p in [2usize, 4] {
        for n in trip_points(total) {
            let cx = ExecCtx::with_parallelism(Budget::unlimited().trip_after(n), p);
            // The scan reports trips as an *inconclusive verdict*, not
            // an error: partial progress is a first-class answer here.
            match check_exhaustive_ctx(&v, &q, 3, 1 << 26, &cx).expect("scan must not error") {
                SemanticVerdict::Exhausted(e) => {
                    assert_eq!(
                        e.reason,
                        ExhaustReason::FaultInjected,
                        "p={p} trip {n}/{total}: a sibling's induced cancellation \
                         must never mask the root cause"
                    );
                    // Shards checkpoint concurrently: each sibling may
                    // land one more fetch past the trip threshold before
                    // it observes the trip, so the winner's count is
                    // exact up to a slack of (width - 1).
                    assert!(
                        e.work_done.steps >= n - 1 && e.work_done.steps <= n - 1 + (p as u64 - 1),
                        "p={p} trip {n}/{total}: steps {} outside [{}, {}]",
                        e.work_done.steps,
                        n - 1,
                        n - 1 + (p as u64 - 1)
                    );
                    assert!(!e.partial.is_empty(), "p={p} trip {n}/{total}: lost progress");
                }
                other => panic!("p={p} trip {n}/{total}: expected Exhausted, got {other:?}"),
            }
        }
        let retry = ExecCtx::with_parallelism(Budget::unlimited(), p);
        let verdict = check_exhaustive_ctx(&v, &q, 3, 1 << 26, &retry).expect("retry");
        // (The retry is the same workload: a conclusive verdict proves
        // the injected faults left no poisoned state behind.)
        assert!(
            matches!(verdict, SemanticVerdict::NoCounterexampleUpTo(3)),
            "p={p}: retry after faults must reproduce the baseline, got {verdict:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Observability: foreign-shard counters are absorbed exactly.
// ---------------------------------------------------------------------

#[test]
fn parallel_profile_accounts_for_every_engine_counter() {
    let s = schema();
    let (views, q, extent) = certain_workload(&s, 8);
    let seq_budget = Budget::unlimited();
    let mut seq_out = None;
    let seq = engine_delta(|| {
        seq_out = Some(certain_sound_ctx(&views, &q, &extent, &seq_budget).unwrap());
    });
    let seq_steps = seq_budget.steps();
    // Counters whose parallel total must be *exactly* the sequential
    // one: sharding strides root candidates before any per-candidate
    // accounting, and everything else is either pre-fan-out (chase,
    // index build) or post-merge (the null filter).
    let exact = [
        Metric::ChaseRounds,
        Metric::ChaseTriggersFired,
        Metric::ChaseNullsCreated,
        Metric::HomCandidatesTried,
        Metric::HomPruneHits,
        Metric::CertainTuplesChecked,
        Metric::CertainAnswersKept,
        Metric::IndexBuilds,
        Metric::IndexDeltaTuples,
    ];
    for p in [2usize, 4] {
        let cx = ExecCtx::with_parallelism(Budget::unlimited(), p);
        let mut par_out = None;
        let par = engine_delta(|| {
            par_out = Some(certain_sound_ctx(&views, &q, &extent, &cx).unwrap());
        });
        assert_eq!(par_out, seq_out, "p={p}: answers diverged");
        for m in exact {
            assert_eq!(
                par.get(m),
                seq.get(m),
                "p={p}: {} must be exact under parallelism",
                m.name()
            );
        }
        // Each shard closes its own root candidate stride with one
        // exhaustion mark — the only counter fan-out is allowed to move.
        assert_eq!(
            par.get(Metric::HomBacktracks),
            seq.get(Metric::HomBacktracks) + (p as u64 - 1),
            "p={p}: backtracks may grow only by the per-shard root exhaustion"
        );
        // Budget checkpoints are untouched by the fan-out.
        assert_eq!(cx.budget().steps(), seq_steps, "p={p}: steps diverged");
    }
}

// ---------------------------------------------------------------------
// Wire: requested parallelism is clamped and reported.
// ---------------------------------------------------------------------

#[test]
fn server_clamps_requested_parallelism_and_reports_threads_used() {
    let handle = server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 16,
        caps: ServerCaps { engine_threads: 3, ..Default::default() },
    })
    .expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let request = Request::Certain {
        schema: "E/2".to_owned(),
        views: "V(x,y) :- E(x,y).".to_owned(),
        query: "Q(x,z) :- E(x,y), E(y,z).".to_owned(),
        extent: "V(A,B). V(B,C). V(C,D).".to_owned(),
    };
    // A plain call is sequential: no `threads_used` claim on the wire.
    let seq = client.call(Limits::none(), request.clone()).expect("sequential call");
    assert_eq!(seq.work.threads_used, 0, "sequential requests must not claim fan-out");
    // Requesting more than the server's engine pool clamps to it.
    let envelope = Envelope::new("par-1", Limits::none(), request).with_parallelism(8);
    let par = client
        .call_raw(&envelope.to_json().to_string())
        .expect("parallel call");
    assert_eq!(par.outcome, seq.outcome, "parallel reply must be byte-identical");
    assert_eq!(
        par.work.threads_used, 3,
        "requested width 8 must clamp to the server's 3 engine threads"
    );
    let _ = handle.shutdown();
}
