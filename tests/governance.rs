//! Fault-injection sweep over the resource-governance layer.
//!
//! Every long-running engine takes a [`Budget`]; this harness forces that
//! budget to trip at *every* checkpoint an engine ever reaches and asserts
//! the contract of graceful degradation:
//!
//! 1. no panic and no poisoned lock — the engine returns a structured
//!    [`Exhausted`] outcome;
//! 2. the outcome carries meaningful progress stats (steps completed, a
//!    human-readable partial-progress message);
//! 3. re-running the same call with a larger budget completes and agrees
//!    with the unbudgeted baseline.

use vqd::budget::{Budget, ExhaustReason, Exhausted, VqdError};
use vqd::chase::{v_inverse_budgeted, CqViews, Tower};
use vqd::core::determinacy::{
    check_exhaustive_budgeted, check_exhaustive_parallel_budgeted, decide_finite_budgeted,
    decide_unrestricted_budgeted, FiniteVerdict, SemanticVerdict,
};
use vqd::datalog::{eval_program_budgeted, EvalError, Strategy};
use vqd::eval::{
    apply_views, contained_bounded_budgeted, eval_fo_budgeted, BoundedContainment,
};
use vqd::instance::{DomainNames, Instance, NullGen, Schema};
use vqd::query::{
    cq_to_fo, parse_instance, parse_program, parse_query, Cq, QueryExpr, ViewSet,
};

/// Cap on how many distinct trip points a single sweep exercises; long
/// engines are sampled evenly rather than swept exhaustively.
const MAX_TRIP_POINTS: u64 = 48;

/// Runs `op` unbudgeted to learn its checkpoint count and baseline
/// outcome, then injects a fault at (a sample of) every checkpoint.
///
/// `op` must map exhaustion to `Err` and success to a *comparable*
/// summary (`Ok`); nondeterministic details must be projected away by the
/// adapter, not tolerated here.
fn fault_sweep<T, F>(name: &str, op: F)
where
    T: PartialEq + std::fmt::Debug,
    F: Fn(&Budget) -> Result<T, Box<Exhausted>>,
{
    let probe = Budget::unlimited();
    let baseline = match op(&probe) {
        Ok(v) => v,
        Err(e) => panic!("{name}: unlimited run must complete, got {e}"),
    };
    let total = probe.steps();
    assert!(total > 0, "{name}: engine reached no checkpoints — it is ungoverned");

    let stride = total.div_ceil(MAX_TRIP_POINTS).max(1);
    let mut n = 1;
    while n <= total {
        let budget = Budget::unlimited().trip_after(n);
        match op(&budget) {
            Err(e) => {
                assert_eq!(
                    e.reason,
                    ExhaustReason::FaultInjected,
                    "{name}: trip at checkpoint {n}/{total} has the wrong reason"
                );
                assert_eq!(
                    e.work_done.steps,
                    n - 1,
                    "{name}: trip at checkpoint {n}/{total} misreports completed work"
                );
                assert!(
                    !e.partial.is_empty(),
                    "{name}: trip at checkpoint {n}/{total} lost its progress message"
                );
            }
            Ok(v) => panic!(
                "{name}: fault injected at checkpoint {n}/{total} was swallowed: {v:?}"
            ),
        }
        // Graceful recovery: the same call, given room, completes and
        // agrees with the baseline.
        let retry = match op(&Budget::unlimited()) {
            Ok(v) => v,
            Err(e) => panic!("{name}: retry after injected fault failed: {e}"),
        };
        assert_eq!(retry, baseline, "{name}: retry after trip at {n} disagrees");
        n += stride;
    }
}

fn setup(schema: &Schema, views_src: &str, q_src: &str) -> (CqViews, Cq, DomainNames) {
    let mut names = DomainNames::new();
    let prog = parse_program(schema, &mut names, views_src).unwrap();
    let views = CqViews::new(ViewSet::new(schema, prog.defs));
    let q = parse_query(schema, &mut names, q_src)
        .unwrap()
        .as_cq()
        .unwrap()
        .clone();
    (views, q, names)
}

#[test]
fn semantic_search_survives_faults_at_every_checkpoint() {
    let schema = Schema::new([("E", 2)]);
    let (views, q, _) = setup(&schema, "V(x,y) :- E(x,y).", "Q(x,z) :- E(x,y), E(y,z).");
    let vs = views.as_view_set().clone();
    let q = QueryExpr::Cq(q);
    fault_sweep("check_exhaustive", |b| {
        match check_exhaustive_budgeted(&vs, &q, 2, 1 << 22, b) {
            Ok(SemanticVerdict::Exhausted(e)) | Err(VqdError::Exhausted(e)) => Err(e),
            Ok(v) => Ok(format!("{v:?}")),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

#[test]
fn parallel_search_survives_faults_without_poisoned_locks() {
    let schema = Schema::new([("E", 2)]);
    // A refutable pair: workers race to a counterexample, so project the
    // outcome down to its discriminant (which counterexample is found can
    // legitimately vary between runs).
    let (views, q, _) = setup(
        &schema,
        "V(x,y) :- E(x,z), E(z,y).",
        "Q(x,y) :- E(x,a), E(a,b), E(b,y).",
    );
    let vs = views.as_view_set().clone();
    let q = QueryExpr::Cq(q);
    fault_sweep("check_exhaustive_parallel", |b| {
        match check_exhaustive_parallel_budgeted(&vs, &q, 2, 1 << 22, 2, b) {
            Ok(SemanticVerdict::Exhausted(e)) | Err(VqdError::Exhausted(e)) => Err(e),
            Ok(SemanticVerdict::NotDetermined(_)) => Ok("NotDetermined"),
            Ok(SemanticVerdict::NoCounterexampleUpTo(_)) => Ok("NoCounterexample"),
            Ok(SemanticVerdict::TooLarge { .. }) => Ok("TooLarge"),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

#[test]
fn chase_decision_survives_faults_at_every_checkpoint() {
    let schema = Schema::new([("E", 2)]);
    let (views, q, _) = setup(&schema, "V(x,y) :- E(x,y).", "Q(x,z) :- E(x,y), E(y,z).");
    fault_sweep("decide_unrestricted", |b| {
        match decide_unrestricted_budgeted(&views, &q, b) {
            Ok(out) => Ok((out.determined, out.rewriting.is_some())),
            Err(VqdError::Exhausted(e)) => Err(e),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

#[test]
fn finite_decision_survives_faults_at_every_checkpoint() {
    let schema = Schema::new([("E", 2)]);
    let (views, q, _) = setup(
        &schema,
        "V1(x) :- E(x,y), E(y,x).",
        "Q(x) :- E(x,y), E(y,x), E(x,x).",
    );
    fault_sweep("decide_finite", |b| {
        match decide_finite_budgeted(&views, &q, 2, 1 << 22, b) {
            Ok(FiniteVerdict::Exhausted(e)) => Err(e),
            Ok(v) => Ok(format!("{v:?}")),
            Err(VqdError::Exhausted(e)) => Err(e),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

#[test]
fn tower_survives_faults_and_never_goes_ragged() {
    let schema = Schema::new([("E", 2)]);
    let (views, q, _) = setup(
        &schema,
        "V(x,y) :- E(x,z), E(z,y).",
        "Q(x,y) :- E(x,a), E(a,b), E(b,y).",
    );
    fault_sweep("tower", |b| {
        let mut t = match Tower::try_new(&views, &q, b) {
            Ok(t) => t,
            Err(VqdError::Exhausted(e)) => return Err(e),
            Err(e) => panic!("unexpected error kind: {e}"),
        };
        match t.try_grow_to(&views, 3, b) {
            Ok(()) => Ok(t.levels()),
            Err(VqdError::Exhausted(e)) => {
                // The all-or-nothing step contract: whatever the trip
                // point, every materialized level is complete.
                assert!(t.levels() >= 1, "base level must survive");
                Err(e)
            }
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

#[test]
fn view_inverse_survives_faults_at_every_checkpoint() {
    let schema = Schema::new([("E", 2)]);
    let mut names = DomainNames::new();
    let prog = parse_program(&schema, &mut names, "V(x,y) :- E(x,z), E(z,y).").unwrap();
    let views = CqViews::new(ViewSet::new(&schema, prog.defs));
    let d = parse_instance(
        &schema,
        &mut names,
        "E(A,B). E(B,C). E(C,D). E(D,A).",
    )
    .unwrap();
    let image = apply_views(views.as_view_set(), &d);
    let base = Instance::empty(&schema);
    fault_sweep("v_inverse", |b| {
        let mut nulls = NullGen::new();
        match v_inverse_budgeted(&views, &base, &image, &mut nulls, b) {
            Ok(inst) => Ok(inst.total_tuples()),
            Err(VqdError::Exhausted(e)) => Err(e),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

#[test]
fn datalog_engine_survives_faults_with_sound_partial_results() {
    let schema = Schema::new([("E", 2), ("T", 2)]);
    let mut names = DomainNames::new();
    let prog = vqd::datalog::Program::parse(
        &schema,
        &mut names,
        "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
    )
    .unwrap();
    let edb = parse_instance(
        &schema,
        &mut names,
        "E(A,B). E(B,C). E(C,D). E(D,F).",
    )
    .unwrap();
    for strategy in [Strategy::Naive, Strategy::SemiNaive] {
        // Baseline fixpoint, for the soundness assertion below.
        let full = eval_program_budgeted(&prog, &edb, strategy, &Budget::unlimited())
            .expect("unlimited evaluation completes");
        fault_sweep(&format!("eval_program({strategy:?})"), |b| {
            match eval_program_budgeted(&prog, &edb, strategy, b) {
                Ok(db) => Ok(db.total_tuples()),
                Err(EvalError::Exhausted { partial, info }) => {
                    // Graceful degradation: the partial database is a
                    // sound under-approximation of the fixpoint.
                    assert!(
                        partial.is_subinstance_of(&full),
                        "partial result contains facts outside the fixpoint"
                    );
                    Err(info)
                }
                Err(e) => panic!("unexpected error kind: {e}"),
            }
        });
    }
}

#[test]
fn fo_evaluation_survives_faults_at_every_checkpoint() {
    let schema = Schema::new([("E", 2)]);
    let mut names = DomainNames::new();
    let q = parse_query(&schema, &mut names, "Q(x,z) :- E(x,y), E(y,z).")
        .unwrap()
        .as_cq()
        .unwrap()
        .clone();
    let fo = cq_to_fo(&q);
    let d = parse_instance(&schema, &mut names, "E(A,B). E(B,C). E(C,A).").unwrap();
    fault_sweep("eval_fo", |b| {
        eval_fo_budgeted(&fo, &d, b).map(|rel| rel.len())
    });
}

#[test]
fn containment_survives_faults_at_every_checkpoint() {
    let schema = Schema::new([("E", 2)]);
    let mut names = DomainNames::new();
    let q1 = parse_query(&schema, &mut names, "Q(x,z) :- E(x,y), E(y,z), E(x,x).")
        .unwrap()
        .as_cq()
        .unwrap()
        .clone();
    let q2 = parse_query(&schema, &mut names, "Q(x,z) :- E(x,y), E(y,z).")
        .unwrap()
        .as_cq()
        .unwrap()
        .clone();
    fault_sweep("contained_bounded", |b| {
        match contained_bounded_budgeted(&q1, &q2, 2, 1 << 22, b) {
            BoundedContainment::Exhausted(e) => Err(e),
            v => Ok(format!("{v:?}")),
        }
    });
}

/// The cooperative cancel token stops the parallel scan promptly and the
/// machinery stays usable afterwards (no poisoned lock, no wedged state).
#[test]
fn cancellation_is_cooperative_and_recoverable() {
    let schema = Schema::new([("E", 2)]);
    let (views, q, _) = setup(&schema, "V(x,y) :- E(x,y).", "Q(x,z) :- E(x,y), E(y,z).");
    let vs = views.as_view_set().clone();
    let q = QueryExpr::Cq(q);

    let budget = Budget::unlimited();
    budget.cancel_token().cancel();
    match check_exhaustive_parallel_budgeted(&vs, &q, 2, 1 << 22, 2, &budget) {
        Ok(SemanticVerdict::Exhausted(e)) => {
            assert_eq!(e.reason, ExhaustReason::Canceled);
        }
        other => panic!("cancelled scan must report exhaustion, got {other:?}"),
    }

    // A fresh budget on the same inputs completes normally.
    match check_exhaustive_parallel_budgeted(&vs, &q, 2, 1 << 22, 2, &Budget::unlimited()) {
        Ok(SemanticVerdict::NoCounterexampleUpTo(2)) => {}
        other => panic!("recovery run failed: {other:?}"),
    }
}

/// The incremental index maintenance policy must be invisible to
/// governance: tripping the budget at every checkpoint of a semi-naive
/// saturation yields the same completed-step counts and the same partial
/// database as the rebuild-per-round baseline (the pre-refactor cost
/// model), while the index-build counters confirm the two policies do
/// genuinely different index work.
#[test]
fn index_maintenance_policy_does_not_change_governance_semantics() {
    use vqd::datalog::eval_program_with;
    use vqd::instance::{index_stats, IndexMaintenance};

    let schema = Schema::new([("E", 2), ("T", 2)]);
    let mut names = DomainNames::new();
    let prog = vqd::datalog::Program::parse(
        &schema,
        &mut names,
        "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
    )
    .unwrap();
    let edb = parse_instance(
        &schema,
        &mut names,
        "E(A,B). E(B,C). E(C,D). E(D,F). E(F,G).",
    )
    .unwrap();
    let run = |m: IndexMaintenance, b: &Budget| {
        eval_program_with(&prog, &edb, Strategy::SemiNaive, m, b)
    };

    // Unbudgeted baselines: same fixpoint, different index work. The
    // incremental engine builds its index exactly once for the whole
    // multi-round saturation; the rebuild baseline rebuilds every round.
    let before = index_stats();
    let full_inc = run(IndexMaintenance::Incremental, &Budget::unlimited()).unwrap();
    let mid = index_stats();
    let full_reb = run(IndexMaintenance::Rebuild, &Budget::unlimited()).unwrap();
    let after = index_stats();
    assert_eq!(full_inc, full_reb, "the two policies must reach the same fixpoint");
    assert_eq!(
        mid.builds - before.builds,
        1,
        "incremental saturation must build its index exactly once"
    );
    assert!(
        after.builds - mid.builds > 1,
        "rebuild baseline must rebuild at least once per round"
    );
    assert!(
        mid.delta_tuples - before.delta_tuples > 0,
        "incremental saturation must index its deltas in place"
    );

    // Learn the checkpoint count, then trip both engines at every point.
    let probe = Budget::unlimited();
    run(IndexMaintenance::Incremental, &probe).unwrap();
    let total = probe.steps();
    assert!(total > 0, "saturation reached no checkpoints — it is ungoverned");
    for n in 1..=total {
        let inc = run(IndexMaintenance::Incremental, &Budget::unlimited().trip_after(n));
        let reb = run(IndexMaintenance::Rebuild, &Budget::unlimited().trip_after(n));
        match (inc, reb) {
            (
                Err(EvalError::Exhausted { partial: p1, info: i1 }),
                Err(EvalError::Exhausted { partial: p2, info: i2 }),
            ) => {
                assert_eq!(i1.reason, ExhaustReason::FaultInjected);
                assert_eq!(
                    i1.work_done.steps,
                    n - 1,
                    "trip at checkpoint {n}/{total} misreports completed work"
                );
                assert_eq!(
                    i1.work_done.steps, i2.work_done.steps,
                    "policies disagree on work done at trip {n}/{total}"
                );
                assert_eq!(
                    i1.work_done.tuples, i2.work_done.tuples,
                    "policies disagree on tuples charged at trip {n}/{total}"
                );
                assert_eq!(p1, p2, "partial databases diverge at trip {n}/{total}");
                assert!(
                    p1.is_subinstance_of(&full_inc),
                    "partial at trip {n}/{total} contains facts outside the fixpoint"
                );
            }
            (inc, reb) => panic!(
                "trip at {n}/{total}: both policies must exhaust, got {inc:?} / {reb:?}"
            ),
        }
    }
}
