//! Fault-injection sweep over the resource-governance layer.
//!
//! Every long-running engine takes a [`Budget`]; this harness forces that
//! budget to trip at *every* checkpoint an engine ever reaches and asserts
//! the contract of graceful degradation:
//!
//! 1. no panic and no poisoned lock — the engine returns a structured
//!    [`Exhausted`] outcome;
//! 2. the outcome carries meaningful progress stats (steps completed, a
//!    human-readable partial-progress message);
//! 3. re-running the same call with a larger budget completes and agrees
//!    with the unbudgeted baseline.

use vqd::budget::{Budget, ExhaustReason, Exhausted, VqdError};
use vqd::chase::{v_inverse_budgeted, CqViews, Tower};
use vqd::core::determinacy::{
    check_exhaustive_budgeted, check_exhaustive_parallel_budgeted, decide_finite_budgeted,
    decide_unrestricted_budgeted, FiniteVerdict, SemanticVerdict,
};
use vqd::datalog::{eval_program_budgeted, EvalError, Strategy};
use vqd::eval::{
    apply_views, contained_bounded_budgeted, eval_fo_budgeted, BoundedContainment,
};
use vqd::instance::{DomainNames, Instance, NullGen, Schema};
use vqd::query::{
    cq_to_fo, parse_instance, parse_program, parse_query, Cq, QueryExpr, ViewSet,
};

/// Cap on how many distinct trip points a single sweep exercises; long
/// engines are sampled evenly rather than swept exhaustively.
const MAX_TRIP_POINTS: u64 = 48;

/// Serializes the tests that read or flip the process-global tracing
/// switch: exact-snapshot comparisons must not race a test that enables
/// tracing (which would move the span-event counter under them).
static TRACING_SENSITIVE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn tracing_sensitive() -> std::sync::MutexGuard<'static, ()> {
    TRACING_SENSITIVE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `op` unbudgeted to learn its checkpoint count and baseline
/// outcome, then injects a fault at (a sample of) every checkpoint.
///
/// `op` must map exhaustion to `Err` and success to a *comparable*
/// summary (`Ok`); nondeterministic details must be projected away by the
/// adapter, not tolerated here.
fn fault_sweep<T, F>(name: &str, op: F)
where
    T: PartialEq + std::fmt::Debug,
    F: Fn(&Budget) -> Result<T, Box<Exhausted>>,
{
    let probe = Budget::unlimited();
    let baseline = match op(&probe) {
        Ok(v) => v,
        Err(e) => panic!("{name}: unlimited run must complete, got {e}"),
    };
    let total = probe.steps();
    assert!(total > 0, "{name}: engine reached no checkpoints — it is ungoverned");

    let stride = total.div_ceil(MAX_TRIP_POINTS).max(1);
    let mut n = 1;
    while n <= total {
        let budget = Budget::unlimited().trip_after(n);
        match op(&budget) {
            Err(e) => {
                assert_eq!(
                    e.reason,
                    ExhaustReason::FaultInjected,
                    "{name}: trip at checkpoint {n}/{total} has the wrong reason"
                );
                assert_eq!(
                    e.work_done.steps,
                    n - 1,
                    "{name}: trip at checkpoint {n}/{total} misreports completed work"
                );
                assert!(
                    !e.partial.is_empty(),
                    "{name}: trip at checkpoint {n}/{total} lost its progress message"
                );
            }
            Ok(v) => panic!(
                "{name}: fault injected at checkpoint {n}/{total} was swallowed: {v:?}"
            ),
        }
        // Graceful recovery: the same call, given room, completes and
        // agrees with the baseline.
        let retry = match op(&Budget::unlimited()) {
            Ok(v) => v,
            Err(e) => panic!("{name}: retry after injected fault failed: {e}"),
        };
        assert_eq!(retry, baseline, "{name}: retry after trip at {n} disagrees");
        n += stride;
    }
}

fn setup(schema: &Schema, views_src: &str, q_src: &str) -> (CqViews, Cq, DomainNames) {
    let mut names = DomainNames::new();
    let prog = parse_program(schema, &mut names, views_src).unwrap();
    let views = CqViews::new(ViewSet::new(schema, prog.defs));
    let q = parse_query(schema, &mut names, q_src)
        .unwrap()
        .as_cq()
        .unwrap()
        .clone();
    (views, q, names)
}

#[test]
fn semantic_search_survives_faults_at_every_checkpoint() {
    let schema = Schema::new([("E", 2)]);
    let (views, q, _) = setup(&schema, "V(x,y) :- E(x,y).", "Q(x,z) :- E(x,y), E(y,z).");
    let vs = views.as_view_set().clone();
    let q = QueryExpr::Cq(q);
    fault_sweep("check_exhaustive", |b| {
        match check_exhaustive_budgeted(&vs, &q, 2, 1 << 22, b) {
            Ok(SemanticVerdict::Exhausted(e)) | Err(VqdError::Exhausted(e)) => Err(e),
            Ok(v) => Ok(format!("{v:?}")),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

#[test]
fn parallel_search_survives_faults_without_poisoned_locks() {
    let schema = Schema::new([("E", 2)]);
    // A refutable pair: workers race to a counterexample, so project the
    // outcome down to its discriminant (which counterexample is found can
    // legitimately vary between runs).
    let (views, q, _) = setup(
        &schema,
        "V(x,y) :- E(x,z), E(z,y).",
        "Q(x,y) :- E(x,a), E(a,b), E(b,y).",
    );
    let vs = views.as_view_set().clone();
    let q = QueryExpr::Cq(q);
    fault_sweep("check_exhaustive_parallel", |b| {
        match check_exhaustive_parallel_budgeted(&vs, &q, 2, 1 << 22, 2, b) {
            Ok(SemanticVerdict::Exhausted(e)) | Err(VqdError::Exhausted(e)) => Err(e),
            Ok(SemanticVerdict::NotDetermined(_)) => Ok("NotDetermined"),
            Ok(SemanticVerdict::NoCounterexampleUpTo(_)) => Ok("NoCounterexample"),
            Ok(SemanticVerdict::TooLarge { .. }) => Ok("TooLarge"),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

#[test]
fn chase_decision_survives_faults_at_every_checkpoint() {
    let schema = Schema::new([("E", 2)]);
    let (views, q, _) = setup(&schema, "V(x,y) :- E(x,y).", "Q(x,z) :- E(x,y), E(y,z).");
    fault_sweep("decide_unrestricted", |b| {
        match decide_unrestricted_budgeted(&views, &q, b) {
            Ok(out) => Ok((out.determined, out.rewriting.is_some())),
            Err(VqdError::Exhausted(e)) => Err(e),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

/// The router's project-select fast path is an engine like any other:
/// it must reach checkpoints (be governed), trip with exact work stats
/// at every one of them, and recover to the baseline verdict. The pair
/// is pinned to the project-select fragment, so `decide_unrestricted`
/// is exercising the direct procedure here, not the chase.
#[test]
fn fast_path_decision_survives_faults_at_every_checkpoint() {
    use vqd::router::{classify, Fragment};

    let schema = Schema::new([("E", 2), ("P", 1)]);
    let (views, q, _) = setup(
        &schema,
        "V(x,y) :- E(x,y). W(x) :- P(x).",
        "Q(y,x) :- E(x,y).",
    );
    assert_eq!(classify(&views, &q), Fragment::ProjectSelect);
    fault_sweep("decide_unrestricted(fast path)", |b| {
        match decide_unrestricted_budgeted(&views, &q, b) {
            Ok(out) => {
                assert!(out.fast_path, "project-select pair must take the fast path");
                Ok((out.determined, out.rewriting.map(|r| r.render("R"))))
            }
            Err(VqdError::Exhausted(e)) => Err(e),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

/// Outside both decidable fragments the router can only run the
/// budgeted semi-decision; under a starved budget that route must
/// degrade to `Exhausted` with exact completed-work stats (the sweep
/// asserts `steps == n - 1` at every trip point), never a panic or a
/// silent wrong verdict.
#[test]
fn general_route_survives_faults_and_reports_exact_work() {
    use vqd::router::{classify, Fragment};

    let schema = Schema::new([("E", 2), ("P", 1)]);
    let (views, q, _) = setup(
        &schema,
        "V(x,z) :- E(x,y), E(y,z), P(y).",
        "Q(x,z) :- E(x,y), E(y,z), P(y).",
    );
    assert_eq!(classify(&views, &q), Fragment::General);
    fault_sweep("decide_unrestricted(general route)", |b| {
        match decide_unrestricted_budgeted(&views, &q, b) {
            Ok(out) => {
                assert!(!out.fast_path, "general pair must not take the fast path");
                Ok((out.determined, out.rewriting.map(|r| r.render("R"))))
            }
            Err(VqdError::Exhausted(e)) => Err(e),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

#[test]
fn finite_decision_survives_faults_at_every_checkpoint() {
    let schema = Schema::new([("E", 2)]);
    let (views, q, _) = setup(
        &schema,
        "V1(x) :- E(x,y), E(y,x).",
        "Q(x) :- E(x,y), E(y,x), E(x,x).",
    );
    fault_sweep("decide_finite", |b| {
        match decide_finite_budgeted(&views, &q, 2, 1 << 22, b) {
            Ok(FiniteVerdict::Exhausted(e)) => Err(e),
            Ok(v) => Ok(format!("{v:?}")),
            Err(VqdError::Exhausted(e)) => Err(e),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

#[test]
fn tower_survives_faults_and_never_goes_ragged() {
    let schema = Schema::new([("E", 2)]);
    let (views, q, _) = setup(
        &schema,
        "V(x,y) :- E(x,z), E(z,y).",
        "Q(x,y) :- E(x,a), E(a,b), E(b,y).",
    );
    fault_sweep("tower", |b| {
        let mut t = match Tower::try_new(&views, &q, b) {
            Ok(t) => t,
            Err(VqdError::Exhausted(e)) => return Err(e),
            Err(e) => panic!("unexpected error kind: {e}"),
        };
        match t.try_grow_to(&views, 3, b) {
            Ok(()) => Ok(t.levels()),
            Err(VqdError::Exhausted(e)) => {
                // The all-or-nothing step contract: whatever the trip
                // point, every materialized level is complete.
                assert!(t.levels() >= 1, "base level must survive");
                Err(e)
            }
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

#[test]
fn view_inverse_survives_faults_at_every_checkpoint() {
    let schema = Schema::new([("E", 2)]);
    let mut names = DomainNames::new();
    let prog = parse_program(&schema, &mut names, "V(x,y) :- E(x,z), E(z,y).").unwrap();
    let views = CqViews::new(ViewSet::new(&schema, prog.defs));
    let d = parse_instance(
        &schema,
        &mut names,
        "E(A,B). E(B,C). E(C,D). E(D,A).",
    )
    .unwrap();
    let image = apply_views(views.as_view_set(), &d);
    let base = Instance::empty(&schema);
    fault_sweep("v_inverse", |b| {
        let mut nulls = NullGen::new();
        match v_inverse_budgeted(&views, &base, &image, &mut nulls, b) {
            Ok(inst) => Ok(inst.total_tuples()),
            Err(VqdError::Exhausted(e)) => Err(e),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

#[test]
fn datalog_engine_survives_faults_with_sound_partial_results() {
    let schema = Schema::new([("E", 2), ("T", 2)]);
    let mut names = DomainNames::new();
    let prog = vqd::datalog::Program::parse(
        &schema,
        &mut names,
        "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
    )
    .unwrap();
    let edb = parse_instance(
        &schema,
        &mut names,
        "E(A,B). E(B,C). E(C,D). E(D,F).",
    )
    .unwrap();
    for strategy in [Strategy::Naive, Strategy::SemiNaive] {
        // Baseline fixpoint, for the soundness assertion below.
        let full = eval_program_budgeted(&prog, &edb, strategy, &Budget::unlimited())
            .expect("unlimited evaluation completes");
        fault_sweep(&format!("eval_program({strategy:?})"), |b| {
            match eval_program_budgeted(&prog, &edb, strategy, b) {
                Ok(db) => Ok(db.total_tuples()),
                Err(EvalError::Exhausted { partial, info }) => {
                    // Graceful degradation: the partial database is a
                    // sound under-approximation of the fixpoint.
                    assert!(
                        partial.is_subinstance_of(&full),
                        "partial result contains facts outside the fixpoint"
                    );
                    Err(info)
                }
                Err(e) => panic!("unexpected error kind: {e}"),
            }
        });
    }
}

#[test]
fn fo_evaluation_survives_faults_at_every_checkpoint() {
    let schema = Schema::new([("E", 2)]);
    let mut names = DomainNames::new();
    let q = parse_query(&schema, &mut names, "Q(x,z) :- E(x,y), E(y,z).")
        .unwrap()
        .as_cq()
        .unwrap()
        .clone();
    let fo = cq_to_fo(&q);
    let d = parse_instance(&schema, &mut names, "E(A,B). E(B,C). E(C,A).").unwrap();
    fault_sweep("eval_fo", |b| {
        eval_fo_budgeted(&fo, &d, b).map(|rel| rel.len())
    });
}

#[test]
fn containment_survives_faults_at_every_checkpoint() {
    let schema = Schema::new([("E", 2)]);
    let mut names = DomainNames::new();
    let q1 = parse_query(&schema, &mut names, "Q(x,z) :- E(x,y), E(y,z), E(x,x).")
        .unwrap()
        .as_cq()
        .unwrap()
        .clone();
    let q2 = parse_query(&schema, &mut names, "Q(x,z) :- E(x,y), E(y,z).")
        .unwrap()
        .as_cq()
        .unwrap()
        .clone();
    fault_sweep("contained_bounded", |b| {
        match contained_bounded_budgeted(&q1, &q2, 2, 1 << 22, b) {
            BoundedContainment::Exhausted(e) => Err(e),
            v => Ok(format!("{v:?}")),
        }
    });
}

/// The cooperative cancel token stops the parallel scan promptly and the
/// machinery stays usable afterwards (no poisoned lock, no wedged state).
#[test]
fn cancellation_is_cooperative_and_recoverable() {
    let schema = Schema::new([("E", 2)]);
    let (views, q, _) = setup(&schema, "V(x,y) :- E(x,y).", "Q(x,z) :- E(x,y), E(y,z).");
    let vs = views.as_view_set().clone();
    let q = QueryExpr::Cq(q);

    let budget = Budget::unlimited();
    budget.cancel_token().cancel();
    match check_exhaustive_parallel_budgeted(&vs, &q, 2, 1 << 22, 2, &budget) {
        Ok(SemanticVerdict::Exhausted(e)) => {
            assert_eq!(e.reason, ExhaustReason::Canceled);
        }
        other => panic!("cancelled scan must report exhaustion, got {other:?}"),
    }

    // A fresh budget on the same inputs completes normally.
    match check_exhaustive_parallel_budgeted(&vs, &q, 2, 1 << 22, 2, &Budget::unlimited()) {
        Ok(SemanticVerdict::NoCounterexampleUpTo(2)) => {}
        other => panic!("recovery run failed: {other:?}"),
    }
}

/// The incremental index maintenance policy must be invisible to
/// governance: tripping the budget at every checkpoint of a semi-naive
/// saturation yields the same completed-step counts and the same partial
/// database as the rebuild-per-round baseline (the pre-refactor cost
/// model), while the index-build counters confirm the two policies do
/// genuinely different index work.
#[test]
fn index_maintenance_policy_does_not_change_governance_semantics() {
    use vqd::datalog::eval_program_with;
    use vqd::instance::{index_stats, IndexMaintenance};

    let schema = Schema::new([("E", 2), ("T", 2)]);
    let mut names = DomainNames::new();
    let prog = vqd::datalog::Program::parse(
        &schema,
        &mut names,
        "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
    )
    .unwrap();
    let edb = parse_instance(
        &schema,
        &mut names,
        "E(A,B). E(B,C). E(C,D). E(D,F). E(F,G).",
    )
    .unwrap();
    let run = |m: IndexMaintenance, b: &Budget| {
        eval_program_with(&prog, &edb, Strategy::SemiNaive, m, b)
    };

    // Unbudgeted baselines: same fixpoint, different index work. The
    // incremental engine builds its index exactly once for the whole
    // multi-round saturation; the rebuild baseline rebuilds every round.
    let before = index_stats();
    let full_inc = run(IndexMaintenance::Incremental, &Budget::unlimited()).unwrap();
    let mid = index_stats();
    let full_reb = run(IndexMaintenance::Rebuild, &Budget::unlimited()).unwrap();
    let after = index_stats();
    assert_eq!(full_inc, full_reb, "the two policies must reach the same fixpoint");
    assert_eq!(
        mid.builds - before.builds,
        1,
        "incremental saturation must build its index exactly once"
    );
    assert!(
        after.builds - mid.builds > 1,
        "rebuild baseline must rebuild at least once per round"
    );
    assert!(
        mid.delta_tuples - before.delta_tuples > 0,
        "incremental saturation must index its deltas in place"
    );

    // Learn the checkpoint count, then trip both engines at every point.
    let probe = Budget::unlimited();
    run(IndexMaintenance::Incremental, &probe).unwrap();
    let total = probe.steps();
    assert!(total > 0, "saturation reached no checkpoints — it is ungoverned");
    for n in 1..=total {
        let inc = run(IndexMaintenance::Incremental, &Budget::unlimited().trip_after(n));
        let reb = run(IndexMaintenance::Rebuild, &Budget::unlimited().trip_after(n));
        match (inc, reb) {
            (
                Err(EvalError::Exhausted { partial: p1, info: i1 }),
                Err(EvalError::Exhausted { partial: p2, info: i2 }),
            ) => {
                assert_eq!(i1.reason, ExhaustReason::FaultInjected);
                assert_eq!(
                    i1.work_done.steps,
                    n - 1,
                    "trip at checkpoint {n}/{total} misreports completed work"
                );
                assert_eq!(
                    i1.work_done.steps, i2.work_done.steps,
                    "policies disagree on work done at trip {n}/{total}"
                );
                assert_eq!(
                    i1.work_done.tuples, i2.work_done.tuples,
                    "policies disagree on tuples charged at trip {n}/{total}"
                );
                assert_eq!(p1, p2, "partial databases diverge at trip {n}/{total}");
                assert!(
                    p1.is_subinstance_of(&full_inc),
                    "partial at trip {n}/{total} contains facts outside the fixpoint"
                );
            }
            (inc, reb) => panic!(
                "trip at {n}/{total}: both policies must exhaust, got {inc:?} / {reb:?}"
            ),
        }
    }
}

/// Engine counters must be *exact* under governance, not best-effort:
/// a budget trip mid-chase or mid-fixpoint leaves the thread-local
/// counters reflecting precisely the work done before the trip (never
/// more than the full run), and a clean retry reproduces the baseline
/// counts bit-for-bit. Counters are thread-local, so concurrent tests in
/// this binary cannot interfere.
#[test]
fn engine_counters_stay_exact_across_budget_trips() {
    use vqd::chase::v_inverse_indexed;
    use vqd::obs::{Metric, MetricsSnapshot};

    let _guard = tracing_sensitive();
    let schema = Schema::new([("E", 2)]);
    let mut names = DomainNames::new();
    let prog = parse_program(&schema, &mut names, "V(x,y) :- E(x,z), E(z,y).").unwrap();
    let views = CqViews::new(ViewSet::new(&schema, prog.defs));
    let d = parse_instance(&schema, &mut names, "E(A,B). E(B,C). E(C,D). E(D,A).").unwrap();
    let image = apply_views(views.as_view_set(), &d);
    let base = Instance::empty(&schema);
    let chase = |b: &Budget| {
        let mut nulls = NullGen::new();
        v_inverse_indexed(&views, &base, &image, &mut nulls, b)
    };
    let measure = |b: &Budget| {
        let before = MetricsSnapshot::capture();
        let out = chase(b);
        (MetricsSnapshot::capture().diff(&before), out)
    };

    let (baseline, out) = measure(&Budget::unlimited());
    out.expect("unlimited chase completes");
    assert!(baseline.get(Metric::ChaseRounds) > 0, "chase rounds must be counted");
    assert!(baseline.get(Metric::ChaseTriggersFired) > 0, "triggers must be counted");
    assert!(baseline.get(Metric::ChaseNullsCreated) > 0, "invented nulls must be counted");

    let probe = Budget::unlimited();
    chase(&probe).expect("probe completes");
    let total = probe.steps();
    for n in 1..=total {
        let (tripped, out) = measure(&Budget::unlimited().trip_after(n));
        assert!(out.is_err(), "trip at {n}/{total} must exhaust");
        for m in [Metric::ChaseRounds, Metric::ChaseTriggersFired, Metric::ChaseNullsCreated]
        {
            assert!(
                tripped.get(m) <= baseline.get(m),
                "trip at {n}/{total}: {} overshot the full run ({} > {})",
                m.name(),
                tripped.get(m),
                baseline.get(m)
            );
        }
        let (retry, out) = measure(&Budget::unlimited());
        out.expect("retry completes");
        assert_eq!(retry, baseline, "retry after trip at {n}/{total} disagrees");
    }

    // Same contract for the Datalog fixpoint counters.
    let schema = Schema::new([("E", 2), ("T", 2)]);
    let mut names = DomainNames::new();
    let prog = vqd::datalog::Program::parse(
        &schema,
        &mut names,
        "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
    )
    .unwrap();
    let edb = parse_instance(&schema, &mut names, "E(A,B). E(B,C). E(C,D).").unwrap();
    let saturate =
        |b: &Budget| eval_program_budgeted(&prog, &edb, Strategy::SemiNaive, b);
    let measure = |b: &Budget| {
        let before = MetricsSnapshot::capture();
        let out = saturate(b);
        (MetricsSnapshot::capture().diff(&before), out)
    };
    let (baseline, out) = measure(&Budget::unlimited());
    out.expect("unlimited saturation completes");
    assert!(baseline.get(Metric::FixpointRounds) > 0);
    assert!(baseline.get(Metric::FixpointDeltaTuples) > 0);
    let probe = Budget::unlimited();
    saturate(&probe).unwrap();
    let total = probe.steps();
    for n in 1..=total {
        let (tripped, out) = measure(&Budget::unlimited().trip_after(n));
        assert!(out.is_err(), "trip at {n}/{total} must exhaust");
        assert!(tripped.get(Metric::FixpointDeltaTuples) <= baseline.get(Metric::FixpointDeltaTuples));
        let (retry, out) = measure(&Budget::unlimited());
        out.expect("retry completes");
        assert_eq!(retry, baseline, "retry after fixpoint trip at {n}/{total} disagrees");
    }
}

/// With tracing enabled, the Drop-based span guards must close every
/// span even when a budget trip unwinds the engine mid-round: after any
/// run the thread's span depth is back to zero and the drained events
/// are well-formed (known names, depth 0 roots, no dropped events).
#[test]
fn spans_close_cleanly_when_budgets_trip_mid_engine() {
    use vqd::chase::v_inverse_budgeted;
    use vqd::obs;

    let _guard = tracing_sensitive();
    let schema = Schema::new([("E", 2)]);
    let mut names = DomainNames::new();
    let prog = parse_program(&schema, &mut names, "V(x,y) :- E(x,z), E(z,y).").unwrap();
    let views = CqViews::new(ViewSet::new(&schema, prog.defs));
    let d = parse_instance(&schema, &mut names, "E(A,B). E(B,C). E(C,D).").unwrap();
    let image = apply_views(views.as_view_set(), &d);
    let base = Instance::empty(&schema);

    let dl_schema = Schema::new([("E", 2), ("T", 2)]);
    let mut dl_names = DomainNames::new();
    let dl_prog = vqd::datalog::Program::parse(
        &dl_schema,
        &mut dl_names,
        "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
    )
    .unwrap();
    let edb = parse_instance(&dl_schema, &mut dl_names, "E(A,B). E(B,C). E(C,D).").unwrap();

    // Tracing is process-global; flip it on only for the scope of this
    // test (other tests in this binary don't read the span ring).
    obs::set_tracing(true);
    let _ = obs::drain_spans();
    for trip in [1u64, 2, 3, 5, 8] {
        let mut nulls = NullGen::new();
        let _ = v_inverse_budgeted(
            &views,
            &base,
            &image,
            &mut nulls,
            &Budget::unlimited().trip_after(trip),
        );
        assert_eq!(
            obs::current_depth(),
            0,
            "chase trip at {trip} left an open span on this thread"
        );
        let _ = eval_program_budgeted(
            &dl_prog,
            &edb,
            Strategy::SemiNaive,
            &Budget::unlimited().trip_after(trip),
        );
        assert_eq!(
            obs::current_depth(),
            0,
            "fixpoint trip at {trip} left an open span on this thread"
        );
    }
    // One clean run of each so the ring holds completed rounds too.
    let mut nulls = NullGen::new();
    v_inverse_budgeted(&views, &base, &image, &mut nulls, &Budget::unlimited()).unwrap();
    eval_program_budgeted(&dl_prog, &edb, Strategy::SemiNaive, &Budget::unlimited()).unwrap();
    let events = obs::drain_spans();
    obs::set_tracing(false);

    assert!(!events.is_empty(), "traced runs must record span events");
    assert_eq!(obs::dropped_spans(), 0, "the ring must not have overflowed here");
    for e in &events {
        assert!(
            e.name == "chase.round" || e.name == "fixpoint.round",
            "unexpected span name {}",
            e.name
        );
        assert_eq!(e.depth, 0, "round spans are roots");
    }
    // The JSONL export is one object per line, parseable by our own
    // JSON parser.
    let jsonl = obs::spans_to_jsonl(&events);
    assert_eq!(jsonl.lines().count(), events.len());
    for line in jsonl.lines() {
        serde::json::parse(line).expect("span JSONL lines parse");
    }
}
