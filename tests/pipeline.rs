//! Cross-crate integration: end-to-end flows exercising the whole stack
//! (parser → chase → decision → rewriting → evaluation), the tower, the
//! Datalog engine against the lower-bound witnesses, and the Turing
//! construction.

use vqd::chase::{CqViews, Tower};
use vqd::core::determinacy::semantic::{check_exhaustive, SemanticVerdict};
use vqd::core::determinacy::unrestricted::{decide_finite, decide_unrestricted, FiniteVerdict};
use vqd::core::rewriting::{exists_ucq_rewriting, expand_through_views, is_exact_rewriting};
use vqd::core::witnesses::{prop_5_12, prop_5_8};
use vqd::datalog::{eval_program, Program, Strategy};
use vqd::eval::{apply_views, eval_cq, eval_query, eval_ucq, ucq_equivalent};
use vqd::instance::gen::random_instance;
use vqd::instance::{named, DomainNames, Instance, Schema};
use vqd::query::{parse_instance, parse_program, parse_query, QueryExpr, ViewSet};

fn setup(
    schema: &Schema,
    views_src: &str,
    q_src: &str,
) -> (CqViews, vqd::query::Cq, DomainNames) {
    let mut names = DomainNames::new();
    let prog = parse_program(schema, &mut names, views_src).unwrap();
    let views = CqViews::new(ViewSet::new(schema, prog.defs));
    let q = parse_query(schema, &mut names, q_src)
        .unwrap()
        .as_cq()
        .unwrap()
        .clone();
    (views, q, names)
}

#[test]
fn end_to_end_rewriting_pipeline() {
    let schema = Schema::new([("E", 2), ("L", 1)]);
    let (views, q, mut names) = setup(
        &schema,
        "V1(x,y) :- E(x,y), L(x).\nV2(x) :- L(x).",
        "Q(x,z) :- E(x,y), E(y,z), L(x), L(y).",
    );
    let out = decide_unrestricted(&views, &q);
    assert!(out.determined);
    let r = out.rewriting.unwrap();
    assert!(is_exact_rewriting(&views, &q, &r));
    // Expansion really lands back in the base schema.
    let expanded = expand_through_views(&views, &r);
    assert_eq!(expanded.schema, schema);
    // Run on parsed data.
    let db = parse_instance(
        &schema,
        &mut names,
        "E(A,B). E(B,C). E(C,D). L(A). L(B). L(C).",
    )
    .unwrap();
    let image = apply_views(views.as_view_set(), &db);
    assert_eq!(eval_cq(&q, &db), eval_cq(&r, &image));
}

#[test]
fn finite_decision_covers_all_three_regimes() {
    let schema = Schema::new([("E", 2)]);
    // Determined via chase.
    let (v1, q1, _) = setup(&schema, "V(x,y) :- E(x,y).", "Q(x,z) :- E(x,y), E(y,z).");
    assert!(matches!(
        decide_finite(&v1, &q1, 2, 1 << 22),
        FiniteVerdict::Determined(_)
    ));
    // Refuted by finite counterexample.
    let (v2, q2, _) = setup(
        &schema,
        "V(x,y) :- E(x,z), E(z,y).",
        "Q(x,y) :- E(x,a), E(a,b), E(b,y).",
    );
    assert!(matches!(
        decide_finite(&v2, &q2, 3, 1 << 22),
        FiniteVerdict::NotDetermined(_)
    ));
    // Open regime exists: the decision honestly reports it (an example
    // where the chase fails but small domains show no counterexample).
    let (v3, q3, _) = setup(
        &schema,
        "V1(x) :- E(x,y), E(y,x).",
        "Q(x) :- E(x,y), E(y,x), E(x,x).",
    );
    match decide_finite(&v3, &q3, 1, 1 << 8) {
        FiniteVerdict::Open { searched_up_to } => assert!(searched_up_to <= 1),
        FiniteVerdict::NotDetermined(_) => {} // also acceptable: refuted already at domain 1
        FiniteVerdict::Determined(_) => panic!("v3 cannot determine q3"),
        FiniteVerdict::Exhausted(e) => panic!("unbudgeted run cannot exhaust: {e}"),
    }
}

#[test]
fn ucq_rewriting_pipeline() {
    let schema = Schema::new([("E", 2), ("L", 1)]);
    let mut names = DomainNames::new();
    let prog = parse_program(
        &schema,
        &mut names,
        "V1(x,y) :- E(x,y).\nV2(x) :- L(x).",
    )
    .unwrap();
    let views = CqViews::new(ViewSet::new(&schema, prog.defs));
    let q = parse_query(
        &schema,
        &mut names,
        "Q(x) :- L(x).\nQ(x) :- E(x,y), L(y).",
    )
    .unwrap()
    .as_ucq()
    .unwrap();
    let r = exists_ucq_rewriting(&views, &q).expect("UCQ rewriting exists");
    // Verify by expansion and on random instances.
    let expanded = vqd::query::Ucq::new(
        r.disjuncts
            .iter()
            .map(|d| expand_through_views(&views, d))
            .collect(),
    );
    assert!(ucq_equivalent(&expanded, &q));
    let mut rng = rand::rngs::mock::StepRng::new(99, 31);
    for _ in 0..10 {
        let d = random_instance(&schema, 4, 0.3, &mut rng);
        let image = apply_views(views.as_view_set(), &d);
        assert_eq!(eval_ucq(&q, &d), eval_ucq(&r, &image));
    }
}

#[test]
fn tower_matches_semantic_refutation() {
    // Where the tower proves unrestricted non-determinacy, bounded
    // semantics also refute finitely (for this pair).
    let schema = Schema::new([("E", 2)]);
    let (views, q, _) = setup(
        &schema,
        "V(x,y) :- E(x,z), E(z,y).",
        "Q(x,y) :- E(x,a), E(a,b), E(b,y).",
    );
    let mut tower = Tower::new(&views, &q);
    tower.grow_to(&views, 3);
    let (in_d, in_dp) = tower.separation(&q, 2);
    assert!(in_d && !in_dp);
    let verdict = check_exhaustive(
        views.as_view_set(),
        &QueryExpr::Cq(q.clone()),
        3,
        1 << 22,
    );
    assert!(verdict.is_refuted());
}

#[test]
fn datalog_cannot_express_witness_queries() {
    // Sweep a family of negation-free single-rule programs over the
    // Prop 5.8 view vocabulary: none reproduces Q_V on both images.
    let w = prop_5_8();
    let (i1, i2) = w.images();
    let (want1, want2) = w.answers();
    let pschema = w.views.output_schema().extend([("Ans", 1)]);
    let lift = |img: &Instance| {
        let mapping: Vec<_> = img.schema().rel_ids().collect();
        img.transport(&pschema, &mapping)
    };
    let (e1, e2) = (lift(&i1), lift(&i2));
    let mut names = DomainNames::new();
    let bodies = [
        "Ans(x) :- V1(x).",
        "Ans(x) :- V2(x).",
        "Ans(x) :- V3(x).",
        "Ans(x) :- V1(x).\nAns(x) :- V3(x).",
        "Ans(x) :- V2(x), V1(x).",
        "Ans(x) :- V2(x), V3(y), x != y.",
        "Ans(x) :- V1(x).\nAns(x) :- V2(x).\nAns(x) :- V3(x).",
    ];
    for src in bodies {
        let prog = Program::parse(&pschema, &mut names, src).unwrap();
        assert!(prog.is_negation_free());
        let ans = pschema.rel("Ans");
        let o1 = eval_program(&prog, &e1, Strategy::SemiNaive).unwrap();
        let o2 = eval_program(&prog, &e2, Strategy::SemiNaive).unwrap();
        assert!(
            o1.rel(ans) != &want1 || o2.rel(ans) != &want2,
            "monotone program `{src}` must fail on some image"
        );
    }
}

#[test]
fn prop_5_12_witness_consistency_with_finite_decider() {
    // The CQ≠ views cannot be fed to the CQ-only chase (guarded), but the
    // semantic checker handles them and confirms determinacy.
    let w = prop_5_12();
    for n in 1..=3 {
        match check_exhaustive(&w.views, &QueryExpr::Cq(w.query.clone()), n, 1 << 22) {
            SemanticVerdict::NoCounterexampleUpTo(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn mixed_language_views_evaluate_uniformly() {
    // A ViewSet mixing CQ, UCQ and FO definitions is applied coherently.
    let schema = Schema::new([("E", 2), ("L", 1)]);
    let mut names = DomainNames::new();
    let prog = parse_program(
        &schema,
        &mut names,
        "A(x,y) :- E(x,y).\n\
         B(x) :- L(x).\n\
         B(x) :- E(x,x).\n\
         C(x) := L(x) & ~E(x,x).",
    )
    .unwrap();
    let views = ViewSet::new(&schema, prog.defs);
    let mut d = Instance::empty(&schema);
    d.insert_named("E", vec![named(0), named(0)]);
    d.insert_named("L", vec![named(0)]);
    d.insert_named("L", vec![named(1)]);
    let image = apply_views(&views, &d);
    assert!(image.rel_named("A").contains(&[named(0), named(0)]));
    assert_eq!(image.rel_named("B").len(), 2);
    assert_eq!(image.rel_named("C").len(), 1);
    assert!(image.rel_named("C").contains(&[named(1)]));
    // And the generic dispatcher agrees with per-language evaluators.
    for v in views.views() {
        let direct = eval_query(&v.query, &d);
        assert_eq!(&direct, image.rel_named(&v.name));
    }
}

#[test]
fn analyze_facade_end_to_end() {
    use vqd::core::analyze::{analyze, AnalyzeOptions, Determinacy};
    let schema = Schema::new([("E", 2), ("L", 1)]);
    let mut names = DomainNames::new();
    // Determined pair with a rewriting.
    let prog = parse_program(&schema, &mut names, "V(x,y) :- E(x,y).\nW(x) :- L(x).").unwrap();
    let views = ViewSet::new(&schema, prog.defs);
    let q = parse_query(&schema, &mut names, "Q(x,z) :- E(x,y), E(y,z), L(z).").unwrap();
    let a = analyze(&views, &q, AnalyzeOptions::default());
    assert!(matches!(a.determinacy, Determinacy::DeterminedUnrestricted));
    let r = a.rewriting.expect("rewriting");
    // Use it end to end.
    let db = parse_instance(&schema, &mut names, "E(A,B). E(B,C). L(C).").unwrap();
    let image = apply_views(&views, &db);
    let QueryExpr::Cq(qcq) = &q else { panic!() };
    assert_eq!(eval_cq(qcq, &db), eval_cq(&r, &image));

    // Refuted pair falls back to the maximally-contained rewriting.
    let prog2 = parse_program(
        &schema,
        &mut names,
        "V1(x,y) :- E(x,y), L(x).\nV2(x) :- L(x).",
    )
    .unwrap();
    let weak = ViewSet::new(&schema, prog2.defs);
    let q2 = parse_query(&schema, &mut names, "Q(x,z) :- E(x,y), E(y,z).").unwrap();
    let a2 = analyze(&weak, &q2, AnalyzeOptions::default());
    assert!(matches!(a2.determinacy, Determinacy::Refuted(_)));
    let mcr = a2.maximally_contained.expect("MCR fallback");
    // The fallback is contained: its answers are always a subset of Q's.
    let image2 = apply_views(&weak, &db);
    let QueryExpr::Cq(q2cq) = &q2 else { panic!() };
    assert!(vqd::eval::eval_ucq(&mcr, &image2).is_subset(&eval_cq(q2cq, &db)));
}

#[test]
fn turing_machine_full_stack() {
    use vqd::core::reductions::turing::theorem_5_1;
    use vqd::turing::{build_instance, Tm};
    let tm = Tm::complement();
    let con = theorem_5_1(&tm);
    let edges = [(0usize, 1usize), (1, 0)];
    let inst = build_instance(&tm, 2, &edges, 4).unwrap();
    let image = apply_views(&con.views, &inst);
    assert_eq!(image.rel_named("V"), inst.rel_named("R1"));
    let out = vqd::eval::eval_fo(&con.query, &inst);
    // complement of {(0,1),(1,0)} on 2 nodes = {(0,0),(1,1)}.
    assert_eq!(out.len(), 2);
    assert!(out.contains(&[named(0), named(0)]));
    assert!(out.contains(&[named(1), named(1)]));
}
