//! Integration suite for the cross-request instance cache and the
//! session-oriented wire API (`put_instance` / handle extents /
//! `evict_instance` / `cache_stats`), plus span traces over the wire.
//!
//! The load-bearing claims, asserted end to end over TCP:
//!
//! * a handle request answers **byte-identically** to the same request
//!   with the extent inline (modulo the `work` envelope) — on the cache
//!   miss *and* on the hit;
//! * a repeat handle request reports `index_builds: 0`: the chased
//!   canonical database is reused, not rebuilt;
//! * handles are cache references, not leases: eviction (explicit or
//!   LRU) degrades to a typed `unknown-handle` error, never a wrong
//!   answer;
//! * the cache is shared across the worker pool, and per-request
//!   profiles stay per-request deltas on cached paths.

use serde::json::Value;
use std::time::Duration;
use vqd::server::{
    self, client, CacheConfig, Client, DiskConfig, ErrorKind, Limits, Outcome, Request,
    ServerCaps, ServerConfig,
};

fn server_with_caps(workers: usize, caps: ServerCaps) -> server::ServerHandle {
    server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: 64,
        caps,
    })
    .expect("spawn server")
}

fn server(workers: usize) -> server::ServerHandle {
    server_with_caps(workers, ServerCaps::default())
}

fn client(handle: &server::ServerHandle) -> Client {
    let c = Client::connect(handle.addr()).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    c
}

const SCHEMA: &str = "E/2";
const VIEWS: &str = "V(x,y) :- E(x,y).";
const QUERY: &str = "Q(x,z) :- E(x,y), E(y,z).";
const EXTENT: &str = "V(A,B). V(B,C). V(C,D).";

fn certain_inline() -> Request {
    Request::Certain {
        schema: SCHEMA.into(),
        views: VIEWS.into(),
        query: QUERY.into(),
        extent: EXTENT.into(),
    }
}

fn certain_by_handle(handle: &str) -> Request {
    Request::CertainHandle {
        schema: SCHEMA.into(),
        views: VIEWS.into(),
        query: QUERY.into(),
        handle: handle.into(),
    }
}

/// Serializes a response with the named top-level fields removed, for
/// "byte-identical modulo work" comparisons.
fn rendered_without(response: &server::Response, drop: &[&str]) -> String {
    match response.to_json() {
        Value::Obj(fields) => Value::Obj(
            fields.into_iter().filter(|(k, _)| !drop.contains(&k.as_str())).collect(),
        )
        .to_string(),
        other => other.to_string(),
    }
}

#[test]
fn put_request_stats_evict_round_trip() {
    let srv = server(2);
    let mut c = client(&srv);
    let (handle, fingerprint) = c.put_instance("V/2", EXTENT).expect("put");
    assert!(handle.starts_with('h'), "handle {handle}");
    assert!(!fingerprint.is_empty());
    let reply = c.call(Limits::none(), certain_by_handle(&handle)).expect("request");
    match &reply.outcome {
        Outcome::CertainAnswers { count, answers } => {
            assert_eq!(*count, 2, "{answers}");
            assert!(answers.contains('A') && answers.contains('C'), "{answers}");
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    match c.cache_stats().expect("cache_stats") {
        Outcome::CacheStatsSnapshot { puts, misses, entries, bytes, .. } => {
            assert_eq!(puts, 1);
            assert_eq!(misses, 1, "first handle request chases");
            assert!(entries >= 2, "handle + derived entry, got {entries}");
            assert!(bytes > 0);
        }
        other => panic!("unexpected cache stats {other:?}"),
    }
    assert!(c.evict_instance(&handle).expect("evict"), "handle existed");
    assert!(!c.evict_instance(&handle).expect("evict"), "second evict finds nothing");
    let reply = c.call(Limits::none(), certain_by_handle(&handle)).expect("request");
    assert!(client::is_error_kind(&reply, ErrorKind::UnknownHandle), "{reply:?}");
    srv.shutdown();
}

#[test]
fn repeat_handle_request_reports_zero_index_builds() {
    let srv = server(1);
    let mut c = client(&srv);
    let (handle, _) = c.put_instance("V/2", EXTENT).expect("put");
    let miss = c.call(Limits::none(), certain_by_handle(&handle)).expect("miss");
    assert!(miss.work.index_builds > 0, "the first request pays the chase's builds");
    let hit = c.call(Limits::none(), certain_by_handle(&handle)).expect("hit");
    assert_eq!(hit.work.index_builds, 0, "the repeat request must reuse the cached index");
    assert_eq!(miss.outcome, hit.outcome);
    srv.shutdown();
}

#[test]
fn handle_replies_are_byte_identical_to_inline_modulo_work() {
    let srv = server(1);
    let mut c = client(&srv);
    let (handle, _) = c.put_instance("V/2", EXTENT).expect("put");
    // Pin the correlation id so the whole reply line is comparable.
    let envelope = |request: &Request| {
        server::Envelope::new("pinned", Limits::none(), request.clone())
            .to_json()
            .to_string()
    };
    let inline = c.call_raw(&envelope(&certain_inline())).expect("inline");
    let miss = c.call_raw(&envelope(&certain_by_handle(&handle))).expect("miss");
    let hit = c.call_raw(&envelope(&certain_by_handle(&handle))).expect("hit");
    let stripped = |r: &server::Response| rendered_without(r, &["work"]);
    assert_eq!(
        stripped(&inline),
        stripped(&miss),
        "handle (miss) reply must be byte-identical to inline modulo work"
    );
    assert_eq!(
        stripped(&miss),
        stripped(&hit),
        "cache hit reply must be byte-identical to the miss modulo work"
    );
    srv.shutdown();
}

#[test]
fn inline_extents_never_touch_the_cache() {
    let srv = server(1);
    let mut c = client(&srv);
    for _ in 0..3 {
        let reply = c.call(Limits::none(), certain_inline()).expect("inline");
        assert!(matches!(reply.outcome, Outcome::CertainAnswers { .. }));
    }
    match c.cache_stats().expect("cache_stats") {
        Outcome::CacheStatsSnapshot { hits, misses, puts, entries, .. } => {
            assert_eq!(
                (hits, misses, puts, entries),
                (0, 0, 0, 0),
                "inline requests must keep their per-request profile contract"
            );
        }
        other => panic!("unexpected cache stats {other:?}"),
    }
    srv.shutdown();
}

#[test]
fn lru_pressure_evicts_old_handles_into_typed_errors() {
    let caps = ServerCaps {
        cache: CacheConfig { shards: 1, max_entries: 2, max_bytes: u64::MAX, disk: None },
        ..ServerCaps::default()
    };
    let srv = server_with_caps(1, caps);
    let mut c = client(&srv);
    let (h1, _) = c.put_instance("V/2", "V(A,B).").expect("put 1");
    let (h2, _) = c.put_instance("V/2", "V(B,C).").expect("put 2");
    let (h3, _) = c.put_instance("V/2", "V(C,D).").expect("put 3");
    // Capacity 2: the oldest handle is gone, the newer two survive. A
    // request on the evicted handle is a typed error, not a wrong
    // answer, and does not disturb the cache (it fails before chasing).
    let reply = c.call(Limits::none(), certain_by_handle(&h1)).expect("evicted handle");
    assert!(client::is_error_kind(&reply, ErrorKind::UnknownHandle), "{reply:?}");
    // Probe survival via evict (a handle request would insert a derived
    // entry and shove the other handle out of the 2-slot cache).
    assert!(c.evict_instance(&h2).expect("probe h2"), "h2 must have survived");
    assert!(c.evict_instance(&h3).expect("probe h3"), "h3 must have survived");
    match c.cache_stats().expect("cache_stats") {
        Outcome::CacheStatsSnapshot { evictions, max_entries, .. } => {
            assert!(evictions >= 1, "got {evictions}");
            assert_eq!(max_entries, 2);
        }
        other => panic!("unexpected cache stats {other:?}"),
    }
    srv.shutdown();
}

#[test]
fn handles_are_shared_across_the_worker_pool() {
    let srv = server(4);
    let mut c = client(&srv);
    let (handle, _) = c.put_instance("V/2", EXTENT).expect("put");
    let baseline = c.call(Limits::none(), certain_by_handle(&handle)).expect("first");
    // Sequential requests land on whichever worker is free; every one
    // must resolve the handle and agree on the answer.
    for _ in 0..12 {
        let reply = c.call(Limits::none(), certain_by_handle(&handle)).expect("repeat");
        assert_eq!(reply.outcome, baseline.outcome);
    }
    match c.cache_stats().expect("cache_stats") {
        Outcome::CacheStatsSnapshot { hits, misses, .. } => {
            assert_eq!(misses, 1, "only the first request chases");
            assert_eq!(hits, 12);
        }
        other => panic!("unexpected cache stats {other:?}"),
    }
    srv.shutdown();
}

#[test]
fn cached_requests_keep_per_request_profile_deltas() {
    let srv = server(1);
    let mut c = client(&srv);
    let (handle, _) = c.put_instance("V/2", EXTENT).expect("put");
    // Warm the derived entry, then profile two identical hits: were the
    // worker leaking cumulative totals, the second would report more.
    let _ = c.call(Limits::none(), certain_by_handle(&handle)).expect("warm");
    let first = c.call_profiled(Limits::none(), certain_by_handle(&handle)).expect("hit 1");
    let second = c.call_profiled(Limits::none(), certain_by_handle(&handle)).expect("hit 2");
    assert_eq!(first.outcome, second.outcome);
    let p1 = first.profile.expect("profile requested");
    let p2 = second.profile.expect("profile requested");
    assert_eq!(p1, p2, "identical cached requests must report identical profiles");
    assert_eq!(p1.get(vqd::obs::Metric::IndexBuilds), 0);
    srv.shutdown();
}

#[test]
fn poisoned_shards_recover_under_concurrent_put_evict_spill_churn() {
    // Persistent tier on, so the churn exercises put + evict + spill
    // concurrently while we poison shard locks mid-run.
    let dir = std::env::temp_dir()
        .join(format!("vqd-cache-poison-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let caps = ServerCaps {
        cache: CacheConfig {
            shards: 2,
            max_entries: 16,
            max_bytes: u64::MAX,
            disk: Some(DiskConfig::at(dir.clone())),
        },
        ..ServerCaps::default()
    };
    let srv = server_with_caps(2, caps);
    let addr = srv.addr();
    let workers: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || -> Result<(), String> {
                let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
                c.set_read_timeout(Some(Duration::from_secs(30)))
                    .map_err(|e| format!("timeout: {e}"))?;
                for i in 0..8 {
                    let extent = format!("V(A{t}x{i},B). V(B,C{t}x{i}).");
                    let (h, _) = c
                        .put_instance("V/2", &*extent)
                        .map_err(|e| format!("put: {e}"))?;
                    let reply = c
                        .call(Limits::none(), certain_by_handle(&h))
                        .map_err(|e| format!("request: {e}"))?;
                    // Under LRU churn the handle may already be evicted;
                    // that degrades to a typed error, never a transport
                    // failure or a wrong answer.
                    match &reply.outcome {
                        Outcome::CertainAnswers { .. } => {}
                        Outcome::Error { kind: ErrorKind::UnknownHandle, .. } => {}
                        other => return Err(format!("unexpected outcome {other:?}")),
                    }
                    let _ = c.evict_instance(&h);
                }
                Ok(())
            })
        })
        .collect();
    // Poison every shard (distinct keys land on both of the two shards)
    // while the churn is in flight: subsequent operations must recover
    // the locks instead of wedging or erroring.
    std::thread::sleep(Duration::from_millis(20));
    for key in ["a", "b", "c", "d"] {
        srv.cache().poison_shard_for_tests(key);
    }
    for w in workers {
        w.join().expect("churn thread must not panic").expect("churn op failed");
    }
    let mut c = client(&srv);
    let (h, _) = c.put_instance("V/2", EXTENT).expect("post-poison put");
    let reply = c.call(Limits::none(), certain_by_handle(&h)).expect("post-poison request");
    match &reply.outcome {
        Outcome::CertainAnswers { count, .. } => assert_eq!(*count, 2),
        other => panic!("unexpected outcome {other:?}"),
    }
    match c.cache_stats().expect("cache_stats") {
        Outcome::CacheStatsSnapshot { puts, disk_spills, .. } => {
            assert!(puts >= 33, "all churn puts must be counted, got {puts}");
            assert!(disk_spills >= 1, "derived entries must have spilled");
        }
        other => panic!("unexpected cache stats {other:?}"),
    }
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traced_requests_return_span_jsonl_untraced_do_not() {
    let srv = server(2);
    let mut c = client(&srv);
    let plain = c.call(Limits::none(), certain_inline()).expect("untraced");
    assert!(plain.trace.is_none(), "traces are strictly opt-in");
    assert!(plain.to_json().get("trace").is_none(), "no trace key on the wire");
    let traced = c.call_traced(Limits::none(), certain_inline()).expect("traced");
    assert_eq!(plain.outcome, traced.outcome, "tracing must not change the verdict");
    let jsonl = traced.trace.expect("trace requested");
    let mut saw_chase = false;
    for line in jsonl.lines() {
        let v = serde::json::parse(line).expect("each trace line is a JSON span event");
        let name = v.get("name").and_then(Value::as_str).unwrap_or_default();
        saw_chase |= name == "chase.round";
    }
    assert!(saw_chase, "a certain_sound request chases, so chase.round spans must appear");
    // The next untraced request on the same (possibly same-worker)
    // connection must not inherit the trace flag or stale spans.
    let after = c.call(Limits::none(), certain_inline()).expect("untraced again");
    assert!(after.trace.is_none());
    srv.shutdown();
}
