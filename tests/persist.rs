//! Integration suite for the crash-safe persistent cache tier.
//!
//! The load-bearing claims, asserted end to end over TCP against real
//! segment files on disk:
//!
//! * a killed-and-restarted server answers its first handle request
//!   **byte-identically** (modulo the `work` envelope) with
//!   `index_builds: 0` — the chased canonical database came back from
//!   disk, not from a re-chase;
//! * the handle table and the handle counter survive restarts: old
//!   handles keep answering and new handles never collide;
//! * a RAM-budget-starved restart leaves entries disk-only and the
//!   first request **promotes** them (an honestly-charged cheaper miss);
//! * every injected fault class — short write, read error, torn tail,
//!   bit flip, plus byte-level corruption of the segment itself —
//!   degrades to a *counted clean miss*: answers stay correct, nothing
//!   panics, a counter moves;
//! * the `cache_stats` wire reply carries the disk counters additively:
//!   replies without the `disk_*` keys still decode (as zeros).

use serde::json::Value;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;
use vqd::server::{
    self, CacheConfig, Client, DiskConfig, DiskFault, Limits, Outcome, Request, Response,
    ServerCaps, ServerConfig,
};

const SCHEMA: &str = "E/2";
const VIEWS: &str = "V(x,y) :- E(x,y).";
const QUERY: &str = "Q(x,z) :- E(x,y), E(y,z).";
const EXTENT: &str = "V(A,B). V(B,C). V(C,D).";
const EXTENT_2: &str = "V(P,Q). V(Q,R).";

/// A fresh per-test scratch directory; removed on drop so reruns start
/// clean even after a failed assertion.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new() -> TempDir {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "vqd-persist-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn persistent_caps(dir: &std::path::Path) -> ServerCaps {
    ServerCaps {
        cache: CacheConfig {
            disk: Some(DiskConfig::at(dir.to_path_buf())),
            ..CacheConfig::default()
        },
        ..ServerCaps::default()
    }
}

fn spawn_with(caps: ServerCaps) -> server::ServerHandle {
    server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 64,
        caps,
    })
    .expect("spawn server")
}

fn client(handle: &server::ServerHandle) -> Client {
    let c = Client::connect(handle.addr()).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    c
}

fn certain_by_handle(handle: &str) -> Request {
    Request::CertainHandle {
        schema: SCHEMA.into(),
        views: VIEWS.into(),
        query: QUERY.into(),
        handle: handle.into(),
    }
}

/// A wire line with a pinned correlation id, so whole replies compare.
fn pinned(request: &Request) -> String {
    server::Envelope::new("pinned", Limits::none(), request.clone()).to_json().to_string()
}

/// Serializes a response with the named top-level fields removed, for
/// "byte-identical modulo work" comparisons.
fn rendered_without(response: &Response, drop: &[&str]) -> String {
    match response.to_json() {
        Value::Obj(fields) => Value::Obj(
            fields.into_iter().filter(|(k, _)| !drop.contains(&k.as_str())).collect(),
        )
        .to_string(),
        other => other.to_string(),
    }
}

fn disk_counters(srv: &server::ServerHandle) -> vqd::server::DiskCounters {
    srv.cache().disk().expect("tier configured").counters()
}

#[test]
fn restart_answers_byte_identically_with_zero_index_builds() {
    let dir = TempDir::new();

    // First life: register the extent and pay the chase.
    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    let (handle, fingerprint) = c.put_instance("V/2", EXTENT).expect("put");
    let miss = c.call_raw(&pinned(&certain_by_handle(&handle))).expect("miss");
    assert!(matches!(miss.outcome, Outcome::CertainAnswers { .. }), "{miss:?}");
    assert!(miss.work.index_builds > 0, "the first request pays the chase's builds");
    let baseline = rendered_without(&miss, &["work"]);
    assert!(disk_counters(&srv).spills >= 1, "the derived entry spilled at insert");
    srv.shutdown();

    // Second life, same directory: the very first request must be a
    // warm hit — byte-identical answer, zero index builds.
    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    let first = c.call_raw(&pinned(&certain_by_handle(&handle))).expect("warm request");
    assert_eq!(
        first.work.index_builds, 0,
        "a restarted server must answer its first handle request from disk"
    );
    assert_eq!(
        rendered_without(&first, &["work"]),
        baseline,
        "the post-restart reply must be byte-identical modulo work"
    );
    // The fingerprint survives too: re-putting the same extent
    // deduplicates to the same fingerprint.
    let (_, fp2) = c.put_instance("V/2", EXTENT).expect("re-put");
    assert_eq!(fp2, fingerprint);
    srv.shutdown();
}

#[test]
fn handle_table_and_counter_survive_restart_without_collisions() {
    let dir = TempDir::new();

    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    let (h1, _) = c.put_instance("V/2", EXTENT).expect("put 1");
    let (h2, _) = c.put_instance("V/2", EXTENT_2).expect("put 2");
    assert_ne!(h1, h2);
    srv.shutdown();

    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    // Old handles answer; a new put mints a fresh, non-colliding handle.
    let r1 = c.call(Limits::none(), certain_by_handle(&h1)).expect("h1");
    assert!(matches!(r1.outcome, Outcome::CertainAnswers { count: 2, .. }), "{r1:?}");
    let r2 = c.call(Limits::none(), certain_by_handle(&h2)).expect("h2");
    assert!(matches!(r2.outcome, Outcome::CertainAnswers { count: 1, .. }), "{r2:?}");
    let (h3, _) = c.put_instance("V/2", "V(X,Y).").expect("put 3");
    assert_ne!(h3, h1, "restored next_handle must not recycle live names");
    assert_ne!(h3, h2);
    srv.shutdown();
}

#[test]
fn starved_restart_promotes_disk_only_entries_on_demand() {
    let dir = TempDir::new();

    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    let (h1, _) = c.put_instance("V/2", EXTENT).expect("put 1");
    let (h2, _) = c.put_instance("V/2", EXTENT_2).expect("put 2");
    for h in [&h1, &h2] {
        let r = c.call(Limits::none(), certain_by_handle(h)).expect("chase");
        assert!(matches!(r.outcome, Outcome::CertainAnswers { .. }), "{r:?}");
    }
    srv.shutdown();

    // Restart with only room for the two handles: both derived indexes
    // stay disk-only, so the first request on each must promote.
    let caps = ServerCaps {
        cache: CacheConfig {
            shards: 1,
            max_entries: 2,
            max_bytes: u64::MAX,
            disk: Some(DiskConfig::at(dir.path().to_path_buf())),
        },
        ..ServerCaps::default()
    };
    let srv = spawn_with(caps);
    let mut c = client(&srv);
    let before = disk_counters(&srv);
    let r = c.call(Limits::none(), certain_by_handle(&h1)).expect("promote");
    assert!(matches!(r.outcome, Outcome::CertainAnswers { count: 2, .. }), "{r:?}");
    let after = disk_counters(&srv);
    assert!(after.promotions > before.promotions, "the hit must be served from disk");
    assert!(
        r.work.index_builds > 0,
        "a promotion rebuilds the in-RAM index and must charge the requester"
    );
    // Now it is in RAM: the repeat is a plain hit with no index builds.
    let again = c.call(Limits::none(), certain_by_handle(&h1)).expect("hit");
    assert_eq!(again.work.index_builds, 0);
    assert_eq!(r.outcome, again.outcome);
    srv.shutdown();
}

#[test]
fn short_write_fault_degrades_the_spill_never_the_answer() {
    let dir = TempDir::new();
    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    let tier = srv.cache().disk().expect("tier").clone();

    tier.arm_fault(DiskFault::ShortWrite, 1);
    let (h, _) = c.put_instance("V/2", EXTENT).expect("put");
    let r = c.call(Limits::none(), certain_by_handle(&h)).expect("request");
    assert!(matches!(r.outcome, Outcome::CertainAnswers { count: 2, .. }), "{r:?}");
    assert!(tier.counters().io_errors >= 1, "the failed spill must be counted");
    // The RAM copy is untouched; repeats still answer and still report
    // a cache hit.
    let again = c.call(Limits::none(), certain_by_handle(&h)).expect("repeat");
    assert_eq!(again.outcome, r.outcome);
    assert_eq!(again.work.index_builds, 0);
    srv.shutdown();
}

#[test]
fn read_error_and_bit_flip_are_counted_clean_misses() {
    let dir = TempDir::new();
    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    let tier = srv.cache().disk().expect("tier").clone();

    for (h, extent) in [("a", EXTENT), ("b", EXTENT_2)] {
        let (h, _) = c.put_instance("V/2", extent).unwrap_or_else(|e| panic!("put {h}: {e}"));
        let r = c.call(Limits::none(), certain_by_handle(&h)).expect("chase");
        assert!(matches!(r.outcome, Outcome::CertainAnswers { .. }), "{r:?}");
    }
    let keys = tier.keys_newest_first();
    assert_eq!(keys.len(), 2, "both derived entries spilled: {keys:?}");

    let before = tier.counters();
    tier.arm_fault(DiskFault::ReadError, 1);
    assert!(tier.load(&keys[0]).is_none(), "a failing read must be a miss, not data");
    let mid = tier.counters();
    assert_eq!(mid.io_errors, before.io_errors + 1);
    assert_eq!(mid.misses, before.misses + 1);

    tier.arm_fault(DiskFault::BitFlip, 1);
    assert!(tier.load(&keys[1]).is_none(), "a flipped bit must fail the checksum");
    let after = tier.counters();
    assert_eq!(after.corrupt_dropped, mid.corrupt_dropped + 1);
    assert_eq!(after.misses, mid.misses + 1);

    // The server never saw any of this as an error: wire requests on
    // the (still RAM-resident) handles keep answering.
    let ping = c.ping().expect("ping");
    assert!(ping);
    srv.shutdown();
}

#[test]
fn torn_tail_after_crash_is_dropped_and_rechased() {
    let dir = TempDir::new();

    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    let (h, _) = c.put_instance("V/2", EXTENT).expect("put");
    let baseline = c.call_raw(&pinned(&certain_by_handle(&h))).expect("chase");
    let segment = srv.cache().disk().expect("tier").segment_path();
    srv.shutdown();

    // Simulate a crash mid-append: chop bytes off the segment so the
    // last record's frame runs past end-of-file.
    let len = std::fs::metadata(&segment).expect("segment exists").len();
    assert!(len > 8, "segment should hold a record, got {len} bytes");
    std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .and_then(|f| f.set_len(len - 5))
        .expect("truncate segment");

    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    let r = c.call_raw(&pinned(&certain_by_handle(&h))).expect("re-chase");
    assert!(
        r.work.index_builds > 0,
        "the torn record must be dropped, forcing a fresh chase"
    );
    assert_eq!(
        rendered_without(&r, &["work"]),
        rendered_without(&baseline, &["work"]),
        "a re-chase after corruption must still answer byte-identically"
    );
    srv.shutdown();
}

#[test]
fn corrupt_segment_byte_starts_clean_and_rechases() {
    let dir = TempDir::new();

    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    let (h, _) = c.put_instance("V/2", EXTENT).expect("put");
    let baseline = c.call_raw(&pinned(&certain_by_handle(&h))).expect("chase");
    let segment = srv.cache().disk().expect("tier").segment_path();
    srv.shutdown();

    // Flip one payload byte in place (offset 20 is inside the first
    // record's body; the frame header is 16 bytes).
    let mut bytes = std::fs::read(&segment).expect("read segment");
    assert!(bytes.len() > 21, "segment too small: {} bytes", bytes.len());
    bytes[20] ^= 0x40;
    std::fs::write(&segment, &bytes).expect("write corrupted segment");

    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    assert!(
        disk_counters(&srv).corrupt_dropped >= 1,
        "the startup scan must count the corrupt record"
    );
    let r = c.call_raw(&pinned(&certain_by_handle(&h))).expect("re-chase");
    assert!(r.work.index_builds > 0, "the corrupt record must not be served");
    assert_eq!(
        rendered_without(&r, &["work"]),
        rendered_without(&baseline, &["work"]),
        "corruption degrades to a clean miss, never a wrong answer"
    );
    srv.shutdown();
}

#[test]
fn corrupt_handle_snapshot_degrades_to_a_cold_start() {
    let dir = TempDir::new();

    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    let (h, _) = c.put_instance("V/2", EXTENT).expect("put");
    let snapshot = srv.cache().disk().expect("tier").handles_path();
    srv.shutdown();

    let mut bytes = std::fs::read(&snapshot).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&snapshot, &bytes).expect("write corrupted snapshot");

    // The server must come up (cold), and the stale handle must fail
    // with a typed error — never a crash, never a wrong answer.
    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    let r = c.call(Limits::none(), certain_by_handle(&h)).expect("stale handle");
    assert!(
        vqd::server::client::is_error_kind(&r, vqd::server::ErrorKind::UnknownHandle),
        "{r:?}"
    );
    let (h2, _) = c.put_instance("V/2", EXTENT).expect("fresh put");
    let r2 = c.call(Limits::none(), certain_by_handle(&h2)).expect("fresh request");
    assert!(matches!(r2.outcome, Outcome::CertainAnswers { count: 2, .. }), "{r2:?}");
    srv.shutdown();
}

/// Recursively strips every `disk_*` key, simulating a reply from a
/// server built before the disk tier existed.
fn strip_disk_keys(value: Value) -> Value {
    match value {
        Value::Obj(fields) => Value::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| !k.starts_with("disk_"))
                .map(|(k, v)| (k, strip_disk_keys(v)))
                .collect(),
        ),
        Value::Arr(items) => Value::Arr(items.into_iter().map(strip_disk_keys).collect()),
        other => other,
    }
}

#[test]
fn cache_stats_disk_fields_are_additive_on_the_wire() {
    let dir = TempDir::new();
    let srv = spawn_with(persistent_caps(dir.path()));
    let mut c = client(&srv);
    let (h, _) = c.put_instance("V/2", EXTENT).expect("put");
    let _ = c.call(Limits::none(), certain_by_handle(&h)).expect("chase");

    let reply = c.call_raw(&pinned(&Request::CacheStats)).expect("cache_stats");
    let Outcome::CacheStatsSnapshot { disk_spills, disk_bytes, .. } = reply.outcome else {
        panic!("unexpected outcome {:?}", reply.outcome)
    };
    assert!(disk_spills >= 1, "the spill must show up over the wire");
    assert!(disk_bytes > 0);

    // An old server's reply — same line minus every disk_* key — must
    // still decode, with the disk counters reading zero.
    let stripped = strip_disk_keys(reply.to_json()).to_string();
    let old = Response::from_line(&stripped).expect("absent disk keys must decode");
    match old.outcome {
        Outcome::CacheStatsSnapshot {
            disk_hits,
            disk_misses,
            disk_spills,
            disk_promotions,
            disk_corrupt_dropped,
            disk_io_errors,
            disk_bytes,
            entries,
            ..
        } => {
            assert_eq!(
                (
                    disk_hits,
                    disk_misses,
                    disk_spills,
                    disk_promotions,
                    disk_corrupt_dropped,
                    disk_io_errors,
                    disk_bytes
                ),
                (0, 0, 0, 0, 0, 0, 0),
                "absent keys decode as zero"
            );
            assert!(entries >= 1, "non-disk fields must survive the strip");
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    srv.shutdown();
}
