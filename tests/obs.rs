//! End-to-end observability smoke tests: per-request execution profiles
//! and the server-wide metrics registry, exercised over real TCP.
//!
//! These pin the service-level observability contract:
//!
//! * a profiled chase-heavy request comes back with non-zero chase-round
//!   and hom-search counters in its `profile` section;
//! * an unprofiled request carries no `profile` section on the wire
//!   (the extension is strictly additive);
//! * the `stats` op returns a registry snapshot whose per-op latency
//!   histograms cover the requests served so far, alongside per-op
//!   request counters, lifetime engine counters, and the uptime gauge;
//! * both extensions have the documented JSON shapes.

use serde::json::Value;
use vqd::obs::Metric;
use vqd::server::{self, Client, Limits, Outcome, Request, ServerCaps, ServerConfig};

fn server(workers: usize) -> server::ServerHandle {
    server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: 16,
        caps: ServerCaps::default(),
    })
    .expect("spawn server")
}

/// 2-path views determine the 4-path query: deciding this chases the
/// canonical instance *and* runs the homomorphism search, so both
/// counter families must move.
fn chase_heavy() -> Request {
    Request::Decide {
        schema: "E/2".to_owned(),
        views: "V(x0,x2) :- E(x0,x1), E(x1,x2).".to_owned(),
        query: "Q(x0,x4) :- E(x0,x1), E(x1,x2), E(x2,x3), E(x3,x4).".to_owned(),
    }
}

#[test]
fn profiled_request_reports_chase_and_hom_work() {
    let handle = server(1);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let response = client.call_profiled(Limits::none(), chase_heavy()).expect("call");
    match &response.outcome {
        Outcome::Decided { determined, .. } => assert!(*determined, "2-paths determine 4-paths"),
        other => panic!("expected a verdict, got {other:?}"),
    }
    let profile = response.profile.as_ref().expect("profile was requested");
    assert!(
        profile.get(Metric::ChaseRounds) > 0,
        "deciding determinacy must chase: {profile:?}"
    );
    assert!(
        profile.get(Metric::HomCandidatesTried) > 0,
        "deciding determinacy must run the hom search: {profile:?}"
    );

    // Wire shape: the reply serializes with a `profile` object mapping
    // counter names to counts, and it round-trips.
    let json = response.to_json();
    let wire_profile = json.get("profile").expect("profile key on the wire");
    assert!(
        wire_profile.get(Metric::ChaseRounds.name()).is_some(),
        "profile JSON must key counters by metric name: {wire_profile}"
    );
    let reparsed = server::Response::from_json(&json).expect("reply JSON round-trips");
    assert_eq!(reparsed.profile.as_ref(), Some(profile));

    // A request that does not opt in gets no profile section at all.
    let plain = client.call(Limits::none(), Request::Ping).expect("ping");
    assert!(plain.profile.is_none());
    assert!(plain.to_json().get("profile").is_none(), "profile must stay opt-in");

    handle.shutdown();
}

#[test]
fn stats_op_returns_registry_covering_served_requests() {
    let handle = server(2);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let reqs = 3u64;
    for _ in 0..reqs {
        let response = client.call(Limits::none(), chase_heavy()).expect("call");
        assert!(matches!(response.outcome, Outcome::Decided { .. }));
    }

    let (metrics, registry) = client.stats_full().expect("stats");
    assert_eq!(metrics.workers, 2);
    assert!(metrics.accepted >= reqs);

    // Per-op request counters and a latency histogram covering every
    // request served on this op.
    assert_eq!(registry.counter("op.decide_unrestricted.requests"), reqs);
    assert_eq!(registry.counter("op.decide_unrestricted.errors"), 0);
    let latency = registry
        .histogram("op.decide_unrestricted.latency_ms")
        .expect("latency histogram for the served op");
    assert_eq!(latency.count, reqs, "every request must be observed: {latency:?}");
    assert!(latency.quantile(0.5) > 0, "p50 reports a bucket bound");

    // Lifetime engine counters fold the per-request profiles.
    assert!(registry.counter("engine.chase_rounds") > 0);
    assert!(registry.counter("engine.hom_candidates_tried") > 0);

    // The stats handler stamps server gauges at snapshot time. (A gauge
    // may legitimately read 0, so assert on key presence, not value.)
    let has_gauge = |name: &str| registry.gauges.iter().any(|(k, _)| k == name);
    assert!(has_gauge("server.uptime_ms"), "uptime gauge must be set");
    assert!(has_gauge("server.connections_open"));
    assert!(has_gauge("server.queue_depth_hwm"));

    // Wire shape of the stats reply: flat v1 metrics stay where v1
    // clients expect them, and the registry rides alongside with its
    // three sections.
    let json = server::Response::new(
        "shape".to_owned(),
        Outcome::StatsSnapshot { metrics, registry: registry.clone() },
        Default::default(),
    )
    .to_json();
    let result = json.get("result").expect("result object");
    assert!(result.get("workers").and_then(Value::as_u64).is_some());
    let wire_registry = result.get("registry").expect("registry object");
    for section in ["counters", "gauges", "histograms"] {
        assert!(wire_registry.get(section).is_some(), "missing `{section}`: {wire_registry}");
    }

    handle.shutdown();
}
