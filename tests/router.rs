//! Integration suite for the fragment router: the syntactic classifier,
//! the project-select fast path, and the server-side routing contract.
//!
//! Covers, end to end:
//!
//! * the `classify` wire op tags each fragment correctly and never does
//!   chase work;
//! * a project-select `decide` takes the direct fast path — definite
//!   verdict with `chase_rounds: 0` and `index_builds: 0` in the
//!   profile/work envelope;
//! * a path-fragment `decide` still routes through the chase;
//! * a general-fragment `decide` carries the honest
//!   `fragment: "undecidable-in-general"` attribution, on success *and*
//!   on exhaustion;
//! * the `fragment` reply field is additive: absent on non-determinacy
//!   ops and strippable back to the pre-router reply bytes;
//! * classifier soundness, determinism, and purity on a seeded corpus;
//! * fast-path/chase agreement (verdict and rewriting, byte for byte)
//!   on a seeded corpus of random project-select pairs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vqd::budget::Budget;
use vqd::chase::CqViews;
use vqd::core::determinacy::decide_unrestricted_chase_budgeted;
use vqd::instance::{DomainNames, Schema};
use vqd::obs::Metric;
use vqd::query::{parse_program, parse_query, Cq, QueryExpr, ViewSet};
use vqd::router::{classify, classify_pair, decide_project_select, Fragment};
use vqd::server::{
    self, Client, Envelope, Limits, Outcome, Request, Response, ServerCaps, ServerConfig,
};
use vqd_bench::genq::{random_cq, CqGen};

fn schema() -> Schema {
    Schema::new([("E", 2), ("P", 1)])
}

/// Parses `views_src`/`q_src` over `E/2,P/1` into the CQ pipeline types.
fn setup(views_src: &str, q_src: &str) -> (CqViews, Cq) {
    let s = schema();
    let mut names = DomainNames::new();
    let prog = parse_program(&s, &mut names, views_src).expect("views parse");
    let views = CqViews::try_new(ViewSet::new(&s, prog.defs)).expect("CQ views");
    let q = match parse_query(&s, &mut names, q_src).expect("query parse") {
        QueryExpr::Cq(q) => q,
        other => panic!("expected a CQ, got {other:?}"),
    };
    (views, q)
}

fn spawn_server() -> server::ServerHandle {
    server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 16,
        caps: ServerCaps::default(),
    })
    .expect("spawn server")
}

fn decide_req(views: &str, query: &str) -> Request {
    Request::Decide {
        schema: "E/2,P/1".to_owned(),
        views: views.to_owned(),
        query: query.to_owned(),
    }
}

fn classify_req(views: &str, query: &str) -> Request {
    Request::Classify {
        schema: "E/2,P/1".to_owned(),
        views: views.to_owned(),
        query: query.to_owned(),
    }
}

/// Issues `request` with profiling on and returns the full response.
fn call_profiled(client: &mut Client, request: Request) -> Response {
    let envelope = Envelope::new("t", Limits::none(), request).with_profile(true);
    client.call_raw(&envelope.to_json().to_string()).expect("call")
}

// ---------------------------------------------------------------------
// Wire contract
// ---------------------------------------------------------------------

#[test]
fn classify_tags_each_fragment_over_the_wire() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    // (views, query, expected tag, expected decidable)
    let table = [
        ("V(x,y) :- E(x,y).", "Q(y,x) :- E(x,y).", "project-select", true),
        ("V(x,z) :- E(x,y), E(y,z).", "Q(x,z) :- E(x,y), E(y,z).", "path", true),
        ("V(x,y) :- E(x,y), E(y,x).", "Q(x,z) :- E(x,y), E(y,z).", "general", false),
    ];
    for (views, query, tag, decidable) in table {
        let reply = client
            .call(Limits::none(), classify_req(views, query))
            .expect("classify call");
        match &reply.outcome {
            Outcome::Classified { fragment, decidable: d, route } => {
                assert_eq!(fragment, tag, "views {views}");
                assert_eq!(*d, decidable, "views {views}");
                assert!(!route.is_empty());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        // Classification is purely structural: no chase, no index, no
        // budgeted steps anywhere in the work envelope.
        assert_eq!(reply.work.steps, 0, "classify must not spend budget");
        assert_eq!(reply.work.index_builds, 0, "classify must not build indexes");
        // The reply-level attribution rides along and uses the honest
        // wire note for the general fragment.
        let note = if decidable { tag } else { "undecidable-in-general" };
        assert_eq!(reply.fragment.as_deref(), Some(note));
    }
    handle.shutdown();
}

#[test]
fn project_select_decide_takes_the_fast_path() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let reply = call_profiled(
        &mut client,
        decide_req("V(x,y) :- E(x,y).", "Q(y,x) :- E(x,y)."),
    );
    match &reply.outcome {
        Outcome::Decided { determined: true, rewriting: Some(r) } => {
            assert!(r.contains("V("), "rewriting must be over the view schema, got {r}");
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    assert_eq!(reply.fragment.as_deref(), Some("project-select"));
    // The acceptance bar: a definite verdict with zero chase rounds and
    // zero index builds — the whole point of the fast path.
    let profile = reply.profile.as_ref().expect("profile requested");
    assert_eq!(profile.get(Metric::ChaseRounds), 0, "fast path must not chase");
    assert_eq!(reply.work.index_builds, 0, "fast path must not build indexes");
    // A refuted project-select pair is equally definite and equally cheap.
    let reply = call_profiled(
        &mut client,
        decide_req("W(x) :- E(x,x).", "Q(x,y) :- E(x,y)."),
    );
    assert!(
        matches!(&reply.outcome, Outcome::Decided { determined: false, rewriting: None }),
        "got {:?}",
        reply.outcome
    );
    assert_eq!(reply.fragment.as_deref(), Some("project-select"));
    assert_eq!(reply.profile.as_ref().expect("profile").get(Metric::ChaseRounds), 0);
    assert_eq!(reply.work.index_builds, 0);
    handle.shutdown();
}

#[test]
fn path_decide_still_routes_through_the_chase() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let reply = call_profiled(
        &mut client,
        decide_req("V(x,z) :- E(x,y), E(y,z).", "Q(x0,x3) :- E(x0,x1), E(x1,x2), E(x2,x3)."),
    );
    // 2-path views vs the 3-path query (2 ∤ 3): chased, refuted.
    assert_eq!(reply.fragment.as_deref(), Some("path"));
    assert!(
        matches!(&reply.outcome, Outcome::Decided { .. }),
        "got {:?}",
        reply.outcome
    );
    // The determined 2|4 case, through the same route.
    let reply = call_profiled(
        &mut client,
        decide_req(
            "V(x,z) :- E(x,y), E(y,z).",
            "Q(x0,x4) :- E(x0,x1), E(x1,x2), E(x2,x3), E(x3,x4).",
        ),
    );
    assert_eq!(reply.fragment.as_deref(), Some("path"));
    match &reply.outcome {
        Outcome::Decided { determined: true, rewriting: Some(_) } => {}
        other => panic!("unexpected outcome {other:?}"),
    }
    let profile = reply.profile.as_ref().expect("profile requested");
    assert!(profile.get(Metric::ChaseRounds) > 0, "path fragment must chase");
    handle.shutdown();
}

#[test]
fn general_decide_is_honestly_attributed_even_when_exhausted() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    // Mixed-arity three-atom views/query: neither single-atom nor a
    // chain, and the view image of the frozen query is non-empty, so
    // the semi-decision does real (tuple-charged) chase work.
    let general = || {
        decide_req("V(x,z) :- E(x,y), E(y,z), P(y).", "Q(x,z) :- E(x,y), E(y,z), P(y).")
    };
    // Unlimited: the semi-decision happens to terminate here, but the
    // reply must still say the fragment gives no guarantee.
    let reply = client.call(Limits::none(), general()).expect("call");
    assert!(matches!(&reply.outcome, Outcome::Decided { .. }), "got {:?}", reply.outcome);
    assert_eq!(reply.fragment.as_deref(), Some("undecidable-in-general"));
    assert!(reply.work.tuples > 1, "the starvation probe below needs > 1 charged tuples");
    // Starved: the attribution must survive the exhausted reply — that
    // is exactly when the client needs to know why there is no verdict.
    let limits = Limits { tuple_limit: Some(1), ..Limits::none() };
    let reply = client.call(limits, general()).expect("call");
    assert!(
        matches!(&reply.outcome, Outcome::Exhausted { .. }),
        "got {:?}",
        reply.outcome
    );
    assert_eq!(reply.fragment.as_deref(), Some("undecidable-in-general"));
    handle.shutdown();
}

#[test]
fn fragment_field_is_additive_and_absent_on_other_ops() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    // Non-determinacy ops carry no attribution at all: the raw reply
    // line has no `fragment` key, so pre-router clients see v1 bytes.
    let reply = client.call(Limits::none(), Request::Ping).expect("ping");
    assert_eq!(reply.fragment, None);
    assert!(!reply.to_json().to_string().contains("\"fragment\""));
    // Determinacy replies differ from their unattributed form only in
    // the additive key: stripping it restores the v1 encoding.
    let reply = client
        .call(Limits::none(), decide_req("V(x,y) :- E(x,y).", "Q(y,x) :- E(x,y)."))
        .expect("decide");
    let line = reply.to_json().to_string();
    let mut stripped = reply.clone();
    stripped.fragment = None;
    assert_eq!(
        line.replace(r#","fragment":"project-select""#, ""),
        stripped.to_json().to_string()
    );
    // And the stripped line still decodes (absent → None), so old
    // replies remain readable by new clients and vice versa.
    let back = Response::from_line(&stripped.to_json().to_string()).expect("decode");
    assert_eq!(back.fragment, None);
    handle.shutdown();
}

#[test]
fn router_counters_show_up_in_the_registry() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    for _ in 0..2 {
        client
            .call(Limits::none(), decide_req("V(x,y) :- E(x,y).", "Q(y,x) :- E(x,y)."))
            .expect("decide");
    }
    client
        .call(
            Limits::none(),
            decide_req("V(x,y) :- E(x,y), E(y,x).", "Q(x,z) :- E(x,y), E(y,z)."),
        )
        .expect("decide");
    client
        .call(Limits::none(), classify_req("V(x,y) :- E(x,y).", "Q(x) :- E(x,x)."))
        .expect("classify");
    let snapshot = handle.registry().snapshot();
    assert_eq!(snapshot.counter("router.fragment.project-select"), 3);
    assert_eq!(snapshot.counter("router.fragment.general"), 1);
    assert_eq!(snapshot.counter("router.fastpath.hits"), 2);
    assert_eq!(snapshot.counter("router.fastpath.misses"), 1);
    // `classify` is served like any other op, so the pool's per-op
    // latency histogram covers it with no extra plumbing.
    assert_eq!(snapshot.counter("op.classify.requests"), 1);
    assert!(snapshot.histogram("op.classify.latency_ms").is_some());
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Classifier properties (seeded corpus)
// ---------------------------------------------------------------------

/// Random views source with `n` views of at most `atoms` atoms each.
fn random_views_src(rng: &mut StdRng, n: usize, atoms: usize) -> String {
    let s = schema();
    (0..n)
        .map(|i| {
            let p = CqGen {
                atoms: rng.gen_range(1..=atoms),
                vars: rng.gen_range(1..=3),
                max_head: 2,
            };
            random_cq(&s, p, rng).render(&format!("V{i}"))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn classifier_is_sound_deterministic_and_pure_on_seeded_corpus() {
    let s = schema();
    let mut rng = StdRng::seed_from_u64(0x5e60_0f1e);
    for _ in 0..300 {
        let nviews = rng.gen_range(1..=3);
        let views_src = random_views_src(&mut rng, nviews, 3);
        let p = CqGen { atoms: rng.gen_range(1..=3), vars: rng.gen_range(1..=3), max_head: 2 };
        let q = random_cq(&s, p, &mut rng);
        let (views, _) = setup(&views_src, &q.render("Q"));
        let before = (views.as_view_set().to_string(), q.render("Q"));
        let fragment = classify(&views, &q);
        // Purity: classification reads, never rewrites.
        assert_eq!(before, (views.as_view_set().to_string(), q.render("Q")));
        // Determinism: same pair, same fragment, every time.
        assert_eq!(fragment, classify(&views, &q));
        // Soundness: the tag implies the structural property that makes
        // the routed procedure correct, checked here independently.
        match fragment {
            Fragment::ProjectSelect => {
                assert_eq!(q.atoms.len(), 1, "project-select query must be one atom");
                for i in 0..views.len() {
                    assert_eq!(views.cq(i).atoms.len(), 1, "project-select views: one atom");
                }
            }
            Fragment::PathQuery => {
                let all = (0..views.len()).map(|i| views.cq(i)).chain(std::iter::once(&q));
                for cq in all {
                    assert_eq!(cq.arity(), 2, "chain CQs expose (first, last)");
                    for atom in &cq.atoms {
                        assert_eq!(atom.args.len(), 2, "chain atoms are binary");
                    }
                }
            }
            Fragment::General => {}
        }
    }
}

#[test]
fn classify_pair_sends_non_cq_input_to_general() {
    let s = schema();
    let mut names = DomainNames::new();
    let prog =
        parse_program(&s, &mut names, "V(x) :- E(x,y), !P(y).").expect("views parse");
    let views = ViewSet::new(&s, prog.defs);
    let q = parse_query(&s, &mut names, "Q(x) :- P(x).").expect("query parse");
    assert_eq!(classify_pair(&views, &q), Fragment::General);
}

#[test]
fn fast_path_agrees_with_chase_on_seeded_project_select_corpus() {
    let s = schema();
    let mut rng = StdRng::seed_from_u64(0xfa57_bead);
    let mut determined = 0usize;
    for i in 0..200 {
        // Single-atom views and query: always project-select.
        let nviews = rng.gen_range(1..=3);
        let views_src = random_views_src(&mut rng, nviews, 1);
        let p = CqGen { atoms: 1, vars: rng.gen_range(1..=3), max_head: 2 };
        let q = random_cq(&s, p, &mut rng);
        let (views, q) = setup(&views_src, &q.render("Q"));
        assert_eq!(classify(&views, &q), Fragment::ProjectSelect, "corpus pair {i}");
        let fast = decide_project_select(&views, &q, &Budget::unlimited())
            .unwrap_or_else(|e| panic!("fast path failed on pair {i}: {e}"));
        let chase = decide_unrestricted_chase_budgeted(&views, &q, &Budget::unlimited())
            .unwrap_or_else(|e| panic!("chase failed on pair {i}: {e}"));
        assert_eq!(
            fast.determined, chase.determined,
            "verdict disagreement on pair {i}: views\n{views_src}\nquery {}",
            q.render("Q")
        );
        assert_eq!(
            fast.rewriting.as_ref().map(|r| r.render("R")),
            chase.rewriting.as_ref().map(|r| r.render("R")),
            "rewriting disagreement on pair {i}"
        );
        determined += usize::from(fast.determined);
    }
    // The corpus must exercise both verdicts or the agreement check is
    // vacuous on one side.
    assert!(determined > 0, "no determined pairs in the corpus");
    assert!(determined < 200, "no refuted pairs in the corpus");
}
