//! Property-based tests (proptest) over the core invariants:
//! Chandra–Merlin containment vs. semantics, minimization, the decision
//! procedure, FO/CQ evaluation agreement, freezing round-trips,
//! canonicalization, Datalog strategy agreement, and the parser.

use proptest::prelude::*;
use vqd::chase::{unfreeze_instance, CqViews};
use vqd::core::determinacy::semantic::check_exhaustive;
use vqd::core::determinacy::unrestricted::decide_unrestricted;
use vqd::eval::{
    apply_views, cq_contained, cq_equivalent, eval_cq, eval_fo, for_each_hom, freeze,
    minimize_cq, normalize_eqs, Assignment, Ordering,
};
use vqd::instance::IndexedInstance;
use vqd::instance::iso::canonical_form;
use vqd::instance::{named, DomainNames, Instance, NullGen, Schema, Value};
use vqd::query::{cq_to_fo, parse_query, Atom, Cq, QueryExpr, Term, VarId, ViewSet};
use std::collections::BTreeMap;

fn schema() -> Schema {
    Schema::new([("E", 2), ("P", 1)])
}

/// A random instance over `{c0..c(n-1)}` described by edge and node lists.
fn arb_instance(n: u32) -> impl Strategy<Value = Instance> {
    let edges = proptest::collection::vec((0..n, 0..n), 0..8);
    let nodes = proptest::collection::vec(0..n, 0..4);
    (edges, nodes).prop_map(|(es, ns)| {
        let mut d = Instance::empty(&schema());
        for (a, b) in es {
            d.insert_named("E", vec![named(a), named(b)]);
        }
        for p in ns {
            d.insert_named("P", vec![named(p)]);
        }
        d
    })
}

/// A random safe plain CQ: atoms over a small variable pool, head drawn
/// from the used variables.
fn arb_cq(max_atoms: usize, vars: u32, head_arity: usize) -> impl Strategy<Value = Cq> {
    let atoms = proptest::collection::vec((proptest::bool::ANY, 0..vars, 0..vars), 1..=max_atoms);
    let head_sel = proptest::collection::vec(0..16u32, head_arity);
    (atoms, head_sel).prop_map(move |(ats, hs)| {
        let s = schema();
        let mut q = Cq::new(&s);
        let vs: Vec<VarId> = (0..vars).map(|i| q.var(&format!("x{i}"))).collect();
        for (is_edge, a, b) in ats {
            if is_edge {
                q.atoms.push(Atom::new(
                    s.rel("E"),
                    vec![vs[a as usize].into(), vs[b as usize].into()],
                ));
            } else {
                q.atoms
                    .push(Atom::new(s.rel("P"), vec![vs[a as usize].into()]));
            }
        }
        let used: Vec<VarId> = q.positive_vars().into_iter().collect();
        q.head = hs
            .iter()
            .map(|h| Term::Var(used[*h as usize % used.len()]))
            .collect();
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chandra–Merlin is sound: containment implies answer containment on
    /// every sampled instance.
    #[test]
    fn containment_sound(q1 in arb_cq(3, 3, 1), q2 in arb_cq(3, 3, 1), d in arb_instance(3)) {
        if cq_contained(&q1, &q2) {
            prop_assert!(eval_cq(&q1, &d).is_subset(&eval_cq(&q2, &d)));
        }
    }

    /// Chandra–Merlin is complete: non-containment is witnessed by the
    /// frozen body of q1 itself.
    #[test]
    fn containment_complete(q1 in arb_cq(3, 3, 1), q2 in arb_cq(3, 3, 1)) {
        if !cq_contained(&q1, &q2) {
            let mut nulls = NullGen::new();
            let (frozen, head, _) = freeze(&q1, &mut nulls).expect("plain CQ");
            prop_assert!(eval_cq(&q1, &frozen).contains(&head));
            prop_assert!(!eval_cq(&q2, &frozen).contains(&head));
        }
    }

    /// Minimization preserves equivalence and is minimal: dropping any
    /// atom of the core breaks equivalence (or safety).
    #[test]
    fn minimize_is_equivalent_and_minimal(q in arb_cq(4, 3, 1)) {
        let m = minimize_cq(&q);
        prop_assert!(cq_equivalent(&m, &q));
        if m.atoms.len() > 1 {
            for i in 0..m.atoms.len() {
                let mut smaller = m.clone();
                smaller.atoms.remove(i);
                prop_assert!(
                    !smaller.is_safe() || !cq_contained(&smaller, &m),
                    "core must be minimal"
                );
            }
        }
    }

    /// The Theorem 3.7 decision: a positive answer always ships an exact
    /// rewriting (checked on sampled instances), and never contradicts
    /// exhaustive finite semantics.
    #[test]
    fn decision_procedure_sound(q in arb_cq(3, 3, 1), v in arb_cq(3, 3, 2), d in arb_instance(3)) {
        let views = CqViews::new(ViewSet::new(&schema(), vec![("V", QueryExpr::Cq(v))]));
        let out = decide_unrestricted(&views, &q);
        if let Some(r) = &out.rewriting {
            let image = apply_views(views.as_view_set(), &d);
            prop_assert_eq!(eval_cq(&q, &d), eval_cq(r, &image));
        }
        if out.determined {
            let verdict = check_exhaustive(
                views.as_view_set(), &QueryExpr::Cq(q.clone()), 2, 1 << 22);
            prop_assert!(!verdict.is_refuted(), "unrestricted ⊃ finite determinacy");
        }
    }

    /// FO and CQ evaluation agree on conjunctive queries.
    #[test]
    fn fo_matches_cq(q in arb_cq(3, 3, 1), d in arb_instance(3)) {
        prop_assert_eq!(eval_cq(&q, &d), eval_fo(&cq_to_fo(&q), &d));
    }

    /// Freezing then unfreezing yields an equivalent query.
    #[test]
    fn freeze_unfreeze_roundtrip(q in arb_cq(4, 3, 1)) {
        let mut nulls = NullGen::new();
        let (inst, head, _) = freeze(&q, &mut nulls).expect("plain CQ");
        let (q2, _) = unfreeze_instance(&inst, &head, &q.schema).expect("schemas match");
        prop_assert!(cq_equivalent(&q, &q2));
    }

    /// Equality normalization preserves semantics.
    #[test]
    fn normalize_eqs_preserves(q in arb_cq(3, 3, 1), d in arb_instance(3), merge in 0..3u32) {
        let mut q = q;
        // Add a random equality between two positive variables.
        let used: Vec<VarId> = q.positive_vars().into_iter().collect();
        if used.len() >= 2 {
            let a = used[merge as usize % used.len()];
            let b = used[(merge as usize + 1) % used.len()];
            q.add_eq(a.into(), b.into());
        }
        let n = normalize_eqs(&q).expect("satisfiable");
        prop_assert!(n.eqs.is_empty());
        prop_assert_eq!(eval_cq(&q, &d), eval_cq(&n, &d));
    }

    /// Canonical forms are invariant under domain permutations.
    #[test]
    fn canonicalization_invariant(d in arb_instance(4), shift in 1..7u32) {
        if d.adom().len() <= 6 {
            let map: BTreeMap<Value, Value> = d
                .adom()
                .into_iter()
                .map(|v| (v, named(v.index() * 3 + shift)))
                .collect();
            let renamed = d.map_values(&map);
            prop_assert_eq!(canonical_form(&d), canonical_form(&renamed));
        }
    }

    /// Both homomorphism orderings enumerate the same match count.
    #[test]
    fn hom_orderings_agree(q in arb_cq(3, 3, 0), d in arb_instance(3)) {
        let index = IndexedInstance::from_instance(&d);
        let mut c1 = 0u64;
        let mut c2 = 0u64;
        for_each_hom(&q.atoms, &index, &Assignment::new(), Ordering::MostConstrained, |_| {
            c1 += 1;
            true
        });
        for_each_hom(&q.atoms, &index, &Assignment::new(), Ordering::Static, |_| {
            c2 += 1;
            true
        });
        prop_assert_eq!(c1, c2);
    }

    /// Render → parse round-trips to an equivalent query.
    #[test]
    fn parser_roundtrip(q in arb_cq(4, 3, 1)) {
        let src = q.render("Q");
        let mut names = DomainNames::new();
        let parsed = parse_query(&schema(), &mut names, &src)
            .expect("rendered query parses")
            .as_cq()
            .expect("CQ")
            .clone();
        prop_assert!(cq_equivalent(&q, &parsed), "roundtrip failed for {}", src);
    }

    /// Datalog strategies agree on random EDBs.
    #[test]
    fn datalog_strategies_agree(d in arb_instance(4)) {
        use vqd::datalog::{eval_program, Program, Strategy};
        let s = Schema::new([("E", 2), ("P", 1), ("T", 2)]);
        let mut names = DomainNames::new();
        let prog = Program::parse(
            &s,
            &mut names,
            "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
        )
        .unwrap();
        // Rebase d onto the extended schema.
        let mapping: Vec<_> = d.schema().rel_ids().collect();
        let edb = d.transport(&s, &mapping);
        let a = eval_program(&prog, &edb, Strategy::Naive).unwrap();
        let b = eval_program(&prog, &edb, Strategy::SemiNaive).unwrap();
        prop_assert_eq!(a, b);
    }

    /// CQ evaluation is monotone (the classical fact the Section 5 lower
    /// bounds contrast against).
    #[test]
    fn cq_eval_is_monotone(q in arb_cq(3, 3, 1), d in arb_instance(3), extra in arb_instance(3)) {
        let bigger = d.union(&extra);
        prop_assert!(eval_cq(&q, &d).is_subset(&eval_cq(&q, &bigger)));
    }

    /// Lemma 3.4 on random views and instances: the inverse-chased
    /// canonical database maps homomorphically back onto the original,
    /// fixing the image's active domain — and its own image covers S.
    #[test]
    fn lemma_3_4_on_random_views(v in arb_cq(2, 3, 2), d in arb_instance(3)) {
        use vqd::chase::{v_inverse, CqViews};
        use vqd::eval::instance_hom;
        let views = CqViews::new(ViewSet::new(&schema(), vec![("V", QueryExpr::Cq(v))]));
        let s = views.apply(&d);
        let mut nulls = NullGen::new();
        let empty = Instance::empty(&schema());
        let d_prime = v_inverse(&views, &empty, &s, &mut nulls);
        // V(D') ⊇ S (each chased tuple witnesses itself).
        prop_assert!(s.is_subinstance_of(&views.apply(&d_prime)));
        // Lemma 3.4: hom D' → D fixing adom(S).
        let fix: Vec<Value> = s.adom().into_iter().collect();
        prop_assert!(instance_hom(&d_prime, &d, &fix).is_some());
    }

    /// The canonical rewriting candidate is always an *upper* bound:
    /// Q ⊆ Q_V ∘ V (Proposition 3.5(ii)), determinacy or not.
    #[test]
    fn prop_3_5_ii_upper_bound(v in arb_cq(2, 3, 2), q in arb_cq(2, 3, 1), d in arb_instance(3)) {
        use vqd::chase::{canonical, CqViews};
        let views = CqViews::new(ViewSet::new(&schema(), vec![("V", QueryExpr::Cq(v))]));
        let can = canonical(&views, &q);
        if can.q_v.is_safe() {
            let image = apply_views(views.as_view_set(), &d);
            prop_assert!(
                eval_cq(&q, &d).is_subset(&eval_cq(&can.q_v, &image)),
                "Q ⊆ Q_V ∘ V must always hold"
            );
        }
    }
}

// Budget invariance: resource governance must never change an answer —
// any budget value yields either the unbudgeted verdict or `Exhausted`,
// and never a panic or a wrong determined/refuted answer.
proptest! {
    /// Bounded semantic search under a random step budget.
    #[test]
    fn budgeted_semantic_search_is_invariant_or_exhausted(
        v in arb_cq(2, 3, 2), q in arb_cq(2, 3, 1), steps in 1u64..300
    ) {
        use vqd::budget::{Budget, VqdError};
        use vqd::core::determinacy::semantic::{check_exhaustive_budgeted, SemanticVerdict};
        let views = ViewSet::new(&schema(), vec![("V", QueryExpr::Cq(v))]);
        let q = QueryExpr::Cq(q);
        let full = check_exhaustive(&views, &q, 2, 1 << 22);
        let budget = Budget::unlimited().with_step_limit(steps);
        match check_exhaustive_budgeted(&views, &q, 2, 1 << 22, &budget) {
            Ok(SemanticVerdict::Exhausted(_)) | Err(VqdError::Exhausted(_)) => {}
            Ok(verdict) => prop_assert_eq!(
                verdict.is_refuted(),
                full.is_refuted(),
                "a budget changed the refutation verdict"
            ),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }

    /// The chase decision under a random step budget.
    #[test]
    fn budgeted_chase_decision_is_invariant_or_exhausted(
        v in arb_cq(2, 3, 2), q in arb_cq(2, 3, 1), steps in 1u64..100
    ) {
        use vqd::budget::{Budget, VqdError};
        use vqd::core::determinacy::unrestricted::decide_unrestricted_budgeted;
        let views = CqViews::new(ViewSet::new(&schema(), vec![("V", QueryExpr::Cq(v))]));
        let full = decide_unrestricted(&views, &q);
        let budget = Budget::unlimited().with_step_limit(steps);
        match decide_unrestricted_budgeted(&views, &q, &budget) {
            Ok(out) => prop_assert_eq!(
                out.determined,
                full.determined,
                "a budget changed the determinacy verdict"
            ),
            Err(VqdError::Exhausted(_)) => {}
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }

    /// Bounded containment under a random step budget.
    #[test]
    fn budgeted_containment_is_invariant_or_exhausted(
        q1 in arb_cq(2, 3, 1), q2 in arb_cq(2, 3, 1), steps in 1u64..100
    ) {
        use vqd::budget::Budget;
        use vqd::eval::{contained_bounded, contained_bounded_budgeted, BoundedContainment};
        let full = contained_bounded(&q1, &q2, 2, 1 << 22);
        let budget = Budget::unlimited().with_step_limit(steps);
        match contained_bounded_budgeted(&q1, &q2, 2, 1 << 22, &budget) {
            BoundedContainment::Exhausted(_) => {}
            verdict => prop_assert_eq!(verdict, full, "a budget changed containment"),
        }
    }

    /// Datalog fixpoints under a random step budget: equal to the full
    /// fixpoint, or exhausted with a sound partial database.
    #[test]
    fn budgeted_datalog_is_invariant_or_sound_partial(
        d in arb_instance(3), steps in 1u64..60
    ) {
        use vqd::budget::Budget;
        use vqd::datalog::{eval_program_budgeted, EvalError, Program, Strategy};
        let pschema = schema().extend([("T", 2)]);
        let mut names = DomainNames::new();
        let prog = Program::parse(
            &pschema,
            &mut names,
            "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
        )
        .unwrap();
        let edb = {
            let mapping: Vec<_> = d.schema().rel_ids().collect();
            d.transport(&pschema, &mapping)
        };
        let full = eval_program_budgeted(&prog, &edb, Strategy::SemiNaive, &Budget::unlimited())
            .unwrap();
        let budget = Budget::unlimited().with_step_limit(steps);
        match eval_program_budgeted(&prog, &edb, Strategy::SemiNaive, &budget) {
            Ok(db) => prop_assert_eq!(db, full, "a budget changed the fixpoint"),
            Err(EvalError::Exhausted { partial, .. }) => prop_assert!(
                partial.is_subinstance_of(&full),
                "partial result contains facts outside the fixpoint"
            ),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }
}
