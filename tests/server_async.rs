//! Integration suite for the readiness-driven connection layer: framing
//! under multiplexing, ordered pipelining, and the new backpressure
//! tiers.
//!
//! Everything here runs against a real server on an ephemeral port,
//! exactly like `tests/server.rs`, but exercises the paths the blocking
//! single-call suite cannot reach:
//!
//! * newline framing surviving arbitrary TCP segmentation (a request
//!   dribbled in byte by byte; two requests in one segment);
//! * depth-8 pipelining on one connection with replies in request order
//!   and per-request profiles still exact;
//! * the per-connection in-flight cap degrading to ordered structured
//!   `overloaded` replies;
//! * a reader too slow to drain its replies tripping the bounded write
//!   queue (typed `timeout`, `server.conn_timeouts` counted, clean
//!   close);
//! * the global connection limit (`ServerCaps.max_conns`) rejecting the
//!   excess connection with a typed `overloaded` and a clean close,
//!   then admitting a new connection once one frees up.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;
use vqd::server::{
    self, netpoll, Client, ErrorKind, Limits, Outcome, Request, ServerCaps, ServerConfig,
};

fn spawn_with(workers: usize, queue_depth: usize, caps: ServerCaps) -> server::ServerHandle {
    server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth,
        caps,
    })
    .expect("spawn server")
}

/// A request that holds a worker for its whole (short) deadline:
/// identity views determine everything, so the exhaustive scan never
/// short-circuits.
fn slow_scan(deadline_ms: u64) -> (Limits, Request) {
    (
        Limits { deadline_ms: Some(deadline_ms), ..Limits::none() },
        Request::Semantic {
            schema: "E/2".to_owned(),
            views: "V(x,y) :- E(x,y).".to_owned(),
            query: "Q(x,z) :- E(x,y), E(y,z).".to_owned(),
            domain: 4,
            space_limit: 1 << 20,
        },
    )
}

fn certain_inline() -> Request {
    Request::Certain {
        schema: "E/2".to_owned(),
        views: "V(x,y) :- E(x,z), E(z,y).".to_owned(),
        query: "Q(x,y) :- E(x,z), E(z,y).".to_owned(),
        extent: "V(A,B). V(B,C). V(C,D).".to_owned(),
    }
}

#[test]
fn a_request_written_byte_at_a_time_is_framed_and_answered() {
    let handle = spawn_with(1, 16, ServerCaps::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let line = "{\"v\":1,\"id\":\"dribble\",\"request\":{\"op\":\"ping\"}}\n";
    for byte in line.as_bytes() {
        stream.write_all(std::slice::from_ref(byte)).expect("write one byte");
        stream.flush().expect("flush");
    }
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    let response = server::Response::from_line(reply.trim()).expect("parse reply");
    assert_eq!(response.id, "dribble");
    assert_eq!(response.outcome, Outcome::Pong);
    handle.shutdown();
}

#[test]
fn two_requests_in_one_segment_get_two_ordered_replies() {
    let handle = spawn_with(2, 16, ServerCaps::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    // One write call, two complete request lines: the framing layer
    // must split them, and the replies must come back in write order.
    let batch = "{\"v\":1,\"id\":\"first\",\"request\":{\"op\":\"ping\"}}\n\
                 {\"v\":1,\"id\":\"second\",\"request\":{\"op\":\"ping\"}}\n";
    stream.write_all(batch.as_bytes()).expect("write both");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    for expected in ["first", "second"] {
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        let response = server::Response::from_line(reply.trim()).expect("parse reply");
        assert_eq!(response.id, expected);
        assert_eq!(response.outcome, Outcome::Pong);
    }
    handle.shutdown();
}

#[test]
fn pipelined_depth_8_replies_arrive_in_order_with_exact_profiles() {
    // One worker: all eight requests of the batch queue up, so the
    // pipeline depth demonstrably exceeds one, and jobs run strictly
    // sequentially — any cross-request counter leak would show up as
    // unequal profiles for the identical requests at positions 0 and 7.
    let handle = spawn_with(1, 16, ServerCaps::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let mut batch: Vec<(Limits, Request)> = Vec::new();
    batch.push((Limits::none(), certain_inline()));
    for _ in 0..6 {
        batch.push((Limits::none(), Request::Ping));
    }
    batch.push((Limits::none(), certain_inline()));
    // call_many itself asserts replies arrive in request order (it
    // fails with InvalidData on any id mismatch).
    let replies = client.call_many_profiled(batch).expect("pipelined batch");
    assert_eq!(replies.len(), 8);
    for reply in &replies[1..7] {
        assert_eq!(reply.outcome, Outcome::Pong);
    }
    let (first, last) = (&replies[0], &replies[7]);
    assert!(
        matches!(first.outcome, Outcome::CertainAnswers { .. }),
        "got {:?}",
        first.outcome
    );
    assert_eq!(first.outcome, last.outcome);
    assert_eq!(first.work.index_builds, last.work.index_builds);
    assert_eq!(first.work.index_tuples, last.work.index_tuples);
    let p1 = first.profile.expect("profile requested");
    let p2 = last.profile.expect("profile requested");
    assert!(!p1.is_zero(), "chase work must appear in the profile");
    assert_eq!(p1, p2, "pipelining leaked engine counters across requests");
    let registry = handle.registry().snapshot();
    assert!(
        registry.gauge("server.pipelined_depth") >= 2,
        "the batch must actually have pipelined: depth {}",
        registry.gauge("server.pipelined_depth")
    );
    handle.shutdown();
}

#[test]
fn the_per_connection_inflight_cap_rejects_in_order_with_overloaded() {
    // Cap of 2 with one worker: the two slow scans occupy the
    // connection's in-flight budget for their whole 600ms deadline, so
    // the six pings behind them must be turned away — and the rejection
    // replies must still come back at their pipelined positions.
    let caps = ServerCaps { max_inflight_per_conn: 2, ..ServerCaps::default() };
    let handle = spawn_with(1, 16, caps);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let mut batch: Vec<(Limits, Request)> = Vec::new();
    batch.push(slow_scan(600));
    batch.push(slow_scan(600));
    for _ in 0..6 {
        batch.push((Limits::none(), Request::Ping));
    }
    let replies = client.call_many(batch).expect("pipelined batch");
    assert_eq!(replies.len(), 8);
    for (i, reply) in replies[..2].iter().enumerate() {
        assert!(
            matches!(reply.outcome, Outcome::Exhausted { .. }),
            "position {i}: admitted scans should run out their deadline, got {:?}",
            reply.outcome
        );
    }
    for (i, reply) in replies[2..].iter().enumerate() {
        match &reply.outcome {
            Outcome::Overloaded { queue_capacity, .. } => {
                assert_eq!(*queue_capacity, 2, "capacity must name the in-flight cap");
            }
            other => panic!("position {}: expected overloaded, got {other:?}", i + 2),
        }
    }
    assert_eq!(handle.registry().counter("server.inflight_rejects").get(), 6);
    let m = handle.shutdown();
    assert_eq!(m.rejected, 6);
}

#[test]
fn a_slow_reader_trips_the_bounded_write_queue_and_gets_a_typed_timeout() {
    // Bound every buffer in the reply path: a small kernel send buffer
    // server-side, a small receive buffer client-side, and a 64KB
    // application write queue. 300 pipelined fat replies (a 512-tuple
    // chain extent) then deterministically overflow the write queue
    // while the client refuses to read.
    let caps = ServerCaps {
        max_writeq_bytes: 64 * 1024,
        max_inflight_per_conn: 512,
        sock_sndbuf: Some(16 * 1024),
        conn_read_timeout: Duration::from_secs(5),
        ..ServerCaps::default()
    };
    let handle = spawn_with(2, 512, caps);
    let mut setup = Client::connect(handle.addr()).expect("connect setup");
    let extent: String =
        (0..512).map(|i| format!("V(N{i},N{}). ", i + 1)).collect();
    let (cache_handle, _) = setup.put_instance("V/2", &*extent).expect("put extent");

    let mut slow = TcpStream::connect(handle.addr()).expect("connect slow");
    netpoll::set_recv_buffer(&slow, 4 * 1024).expect("shrink client rcvbuf");
    slow.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let request_line = server::Envelope::new(
        "fat",
        Limits::none(),
        Request::CertainHandle {
            schema: "E/2".to_owned(),
            views: "V(x,y) :- E(x,y).".to_owned(),
            query: "Q(x,z) :- E(x,y), E(y,z).".to_owned(),
            handle: cache_handle.clone(),
        },
    )
    .to_json()
    .to_string();
    let batch: String = format!("{request_line}\n").repeat(300);
    slow.write_all(batch.as_bytes()).expect("write pipelined batch");
    slow.flush().expect("flush");
    // Only now start reading: everything queued so far has had to sit
    // in the (bounded) server-side buffers.
    let mut reply = String::new();
    slow.read_to_string(&mut reply).expect("read until server closes");
    assert!(
        reply.contains("reader too slow"),
        "the tail of the stream must carry the typed timeout: got {} bytes ending {:?}",
        reply.len(),
        &reply[reply.len().saturating_sub(200)..]
    );
    assert_eq!(handle.registry().counter("server.conn_timeouts").get(), 1);
    // The well-behaved connection is unaffected.
    assert!(setup.ping().expect("ping after slow reader dropped"));
    handle.shutdown();
}

#[test]
fn connections_past_the_global_limit_get_overloaded_and_a_clean_close() {
    let caps = ServerCaps { max_conns: 4, ..ServerCaps::default() };
    let handle = spawn_with(1, 16, caps);
    // Fill the limit, round-tripping each connection so it is fully
    // registered before the next connect.
    let mut held: Vec<Client> = (0..4)
        .map(|_| {
            let mut c = Client::connect(handle.addr()).expect("connect");
            assert!(c.ping().expect("ping"));
            c
        })
        .collect();
    assert_eq!(handle.registry().snapshot().gauge("server.conns_open"), 4);

    // The fifth connection gets one structured reply, then EOF.
    let mut extra = TcpStream::connect(handle.addr()).expect("connect extra");
    extra.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut text = String::new();
    extra.read_to_string(&mut text).expect("read rejection until close");
    let line = text.lines().next().expect("one reply line");
    let response = server::Response::from_line(line).expect("parse rejection");
    match &response.outcome {
        Outcome::Overloaded { queue_capacity, .. } => assert_eq!(*queue_capacity, 4),
        other => panic!("expected overloaded, got {other:?}"),
    }
    assert_eq!(handle.registry().counter("server.conns_rejected").get(), 1);
    // A rejected connection must not consume a slot or reject again.
    let m = handle.metrics();
    assert_eq!(m.connections_open, 4);

    // Freeing a slot admits a new connection (the close is observed by
    // the event loop asynchronously, so retry briefly).
    drop(held.pop());
    let mut admitted = None;
    for _ in 0..100 {
        let mut c = Client::connect(handle.addr()).expect("connect retry");
        c.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        match c.ping() {
            Ok(true) => {
                admitted = Some(c);
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(admitted.is_some(), "a freed slot must admit a new connection");
    drop(admitted);
    drop(held);
    handle.shutdown();
}

#[test]
fn an_unterminated_final_line_is_still_answered_at_eof() {
    // The blocking server answered a request whose final newline never
    // arrived before EOF; the event loop must preserve that.
    let handle = spawn_with(1, 16, ServerCaps::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream
        .write_all(b"{\"v\":1,\"id\":\"tail\",\"request\":{\"op\":\"ping\"}}")
        .expect("write without newline");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply until close");
    let response =
        server::Response::from_line(reply.lines().next().expect("reply line"))
            .expect("parse reply");
    assert_eq!(response.id, "tail");
    assert_eq!(response.outcome, Outcome::Pong);
    handle.shutdown();
}

#[test]
fn the_slowloris_guard_survives_the_event_loop_with_its_exact_shape() {
    // Same contract as the frozen v1 test, but alongside pipelined
    // traffic on a sibling connection: a half-written line times out
    // with the typed error while the busy connection is untouched.
    let caps = ServerCaps {
        conn_read_timeout: Duration::from_millis(200),
        ..ServerCaps::default()
    };
    let handle = spawn_with(2, 16, caps);
    let mut busy = Client::connect(handle.addr()).expect("connect busy");
    busy.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");

    let mut stalled = TcpStream::connect(handle.addr()).expect("connect stalled");
    stalled.write_all(b"{\"v\":1,\"id\":\"stall\"").expect("partial write");
    stalled.flush().expect("flush");
    stalled.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");

    // Pipelined work keeps flowing while the stalled peer waits out its
    // deadline.
    let replies = busy
        .call_many(vec![
            (Limits::none(), Request::Ping),
            (Limits::none(), certain_inline()),
            (Limits::none(), Request::Ping),
        ])
        .expect("pipelined batch");
    assert_eq!(replies.len(), 3);
    assert_eq!(replies[0].outcome, Outcome::Pong);

    let mut reply = String::new();
    stalled.read_to_string(&mut reply).expect("read until server closes");
    let response =
        server::Response::from_line(reply.lines().next().expect("one line"))
            .expect("parse timeout reply");
    assert!(
        matches!(&response.outcome, Outcome::Error { kind: ErrorKind::Timeout, .. }),
        "{response:?}"
    );
    assert_eq!(handle.registry().counter("server.conn_timeouts").get(), 1);
    assert!(busy.ping().expect("busy connection survives"));
    handle.shutdown();
}
