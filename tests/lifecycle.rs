//! Integration suite for the request-lifecycle observability layer:
//! per-request phase timelines, the phase/e2e histograms, the flight
//! recorder, and the Prometheus exposition endpoint.
//!
//! Everything runs against a real server on an ephemeral port, like
//! `tests/server.rs` / `tests/server_async.rs`:
//!
//! * profiled replies carry an additive `timeline` whose `exec_us`
//!   agrees exactly with the work envelope's own clock, per request,
//!   even at pipelining depth 8;
//! * the phase sum approximates the client-measured round trip at
//!   loopback (within 10% or 2ms, whichever is looser);
//! * unprofiled replies carry no timeline on the wire, yet every
//!   worker-served request still feeds the
//!   `server.phase.{frame,queue,exec,reorder,write}_ms` and
//!   `server.e2e_ms` histograms;
//! * an injected worker panic dumps the flight recorder, and the
//!   `flight` wire op returns a digest for the offending request;
//! * `metrics_prom` renders valid Prometheus text exposition with the
//!   five phase histograms in full cumulative form.

use std::time::{Duration, Instant};
use vqd::server::{self, Client, Limits, Outcome, Request, ServerCaps, ServerConfig};

fn spawn_with(workers: usize, caps: ServerCaps) -> server::ServerHandle {
    server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: 32,
        caps,
    })
    .expect("spawn server")
}

fn connect(handle: &server::ServerHandle) -> Client {
    let client = Client::connect(handle.addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    client
}

/// Real (chase + certain-answer) work over an `n`-fact chain extent, so
/// `exec` dominates timer noise.
fn certain_inline(n: usize) -> Request {
    Request::Certain {
        schema: "E/2".to_owned(),
        views: "V(x,y) :- E(x,z), E(z,y).".to_owned(),
        query: "Q(x,y) :- E(x,z), E(z,y).".to_owned(),
        extent: (0..n).map(|i| format!("V(N{i},N{}). ", i + 1)).collect(),
    }
}

#[test]
fn pipelined_depth_8_timelines_are_per_request_exact_and_bounded() {
    // One worker: the batch demonstrably queues, so `queue_us` is real
    // and per-request attribution has every chance to smear — it must
    // not.
    let handle = spawn_with(1, ServerCaps::default());
    let mut client = connect(&handle);
    let mut batch: Vec<(Limits, Request)> = Vec::new();
    batch.push((Limits::none(), certain_inline(64)));
    for _ in 0..6 {
        batch.push((Limits::none(), Request::Ping));
    }
    batch.push((Limits::none(), certain_inline(64)));
    let started = Instant::now();
    let replies = client.call_many_profiled(batch).expect("pipelined batch");
    let batch_us = started.elapsed().as_micros() as u64;
    assert_eq!(replies.len(), 8);
    for (i, reply) in replies.iter().enumerate() {
        let tl = reply.timeline.as_ref().unwrap_or_else(|| {
            panic!("profiled reply {i} must carry a timeline: {reply:?}")
        });
        // Cross-clock witness, per request: the budget's own elapsed
        // clock starts at admission and stops when the worker reports,
        // so it must agree with this request's queue+exec phases — even
        // in the middle of a pipelined batch, where smeared attribution
        // would double-count a neighbour's execution. Tolerances cover
        // millisecond truncation of `elapsed_ms` plus scheduling slack.
        let stamped_us = tl.queue_us + tl.exec_us;
        let budget_us = reply.work.elapsed_ms * 1000;
        assert!(
            budget_us <= stamped_us + 5_000 && stamped_us <= budget_us + 6_000,
            "reply {i}: queue+exec {stamped_us}us disagrees with the budget \
             clock {budget_us}us: {tl:?} vs {:?}",
            reply.work
        );
        // The write phase closes after the reply is serialized, so it
        // reads 0 on the wire by construction.
        assert_eq!(tl.write_us, 0, "reply {i}");
        // No phase of one request can exceed the whole batch's span.
        assert!(
            tl.total_us() <= batch_us,
            "reply {i}: phase sum {}us exceeds batch round trip {batch_us}us",
            tl.total_us()
        );
    }
    // One worker serializes all execution: the per-request exec phases
    // must sum to no more than the whole batch's wall clock.
    let exec_sum: u64 =
        replies.iter().map(|r| r.timeline.as_ref().unwrap().exec_us).sum();
    assert!(
        exec_sum <= batch_us,
        "summed exec {exec_sum}us exceeds the batch round trip {batch_us}us"
    );
    // With one worker, later requests wait for earlier ones: the tail
    // request's queue wait must reflect the serialized executions ahead
    // of it (at least the first heavy request's execution time).
    let first_exec = replies[0].timeline.as_ref().unwrap().exec_us;
    let tail_queue = replies[7].timeline.as_ref().unwrap().queue_us;
    assert!(
        tail_queue >= first_exec,
        "tail queue wait {tail_queue}us < head execution {first_exec}us: \
         queue attribution is not seeing the pipeline"
    );
    handle.shutdown();
}

#[test]
fn single_call_phase_sum_approximates_client_rtt() {
    let handle = spawn_with(2, ServerCaps::default());
    let mut client = connect(&handle);
    // Warm up the connection (registration, first-touch allocations).
    for _ in 0..3 {
        client.call(Limits::none(), Request::Ping).expect("warmup");
    }
    // The phase sum excludes client/network time and the write drain,
    // so it is bounded by the RTT and — at loopback — close to it.
    // Scheduling hiccups happen; retry a few times before declaring the
    // accounting broken.
    let mut last = String::new();
    for attempt in 0..10 {
        let started = Instant::now();
        let reply =
            client.call_profiled(Limits::none(), certain_inline(8)).expect("profiled call");
        let rtt_us = started.elapsed().as_micros() as u64;
        let tl = reply.timeline.expect("profiled reply must carry a timeline");
        assert!(
            tl.total_us() <= rtt_us,
            "phase sum {}us exceeds the client-measured RTT {rtt_us}us",
            tl.total_us()
        );
        let tolerance = (rtt_us / 10).max(2_000);
        if rtt_us - tl.total_us() <= tolerance {
            handle.shutdown();
            return;
        }
        last = format!(
            "attempt {attempt}: rtt {rtt_us}us vs phase sum {}us (tolerance {tolerance}us)",
            tl.total_us()
        );
    }
    panic!("phase sum never came within tolerance of the RTT: {last}");
}

#[test]
fn unprofiled_replies_have_no_timeline_but_histograms_see_everything() {
    let handle = spawn_with(2, ServerCaps::default());
    let mut client = connect(&handle);
    let n = 5u64;
    for _ in 0..n {
        let reply = client.call(Limits::none(), Request::Ping).expect("ping");
        assert_eq!(reply.outcome, Outcome::Pong);
        assert!(
            reply.timeline.is_none(),
            "unprofiled replies must not carry a timeline on the wire"
        );
    }
    let (_, registry) = client.stats_full().expect("stats");
    for name in [
        "server.phase.frame_ms",
        "server.phase.queue_ms",
        "server.phase.exec_ms",
        "server.phase.reorder_ms",
    ] {
        let h = registry
            .histogram(name)
            .unwrap_or_else(|| panic!("{name} missing from the registry"));
        assert!(
            h.count >= n,
            "{name} saw {} requests, expected at least {n}: \
             unprofiled traffic must still be observed",
            h.count
        );
    }
    // Write/e2e close at kernel drain, after the reply is on the wire:
    // by the time the stats reply arrives, at least the earlier pings
    // must have fully drained.
    for name in ["server.phase.write_ms", "server.e2e_ms"] {
        let h = registry
            .histogram(name)
            .unwrap_or_else(|| panic!("{name} missing from the registry"));
        assert!(h.count >= 1, "{name} never observed a drained reply");
    }
    // Satellite: span-ring health is always visible — the dropped
    // counter exists (zero here) and each worker publishes occupancy.
    assert_eq!(registry.counter("trace.spans_dropped"), 0);
    assert!(
        registry
            .gauges
            .iter()
            .any(|(name, _)| name.starts_with("trace.ring_occupancy.")),
        "no per-thread span-ring occupancy gauge in the registry"
    );
    handle.shutdown();
}

#[test]
fn worker_panic_dumps_a_flight_digest_for_the_offending_request() {
    let handle = spawn_with(1, ServerCaps { enable_debug_ops: true, ..ServerCaps::default() });
    let mut client = connect(&handle);
    // A healthy request first, so the ring provably holds *context*,
    // not just the crash. Unique ids: the flight ring is process-global
    // and other tests in this binary write to it too.
    let before = server::Envelope::new("lifecycle-before-panic", Limits::none(), Request::Ping);
    let reply = client.call_raw(&before.to_json().to_string()).expect("ping");
    assert_eq!(reply.outcome, Outcome::Pong);
    let boom =
        server::Envelope::new("lifecycle-boom", Limits::none(), Request::DebugPanic);
    let reply = client.call_raw(&boom.to_json().to_string()).expect("debug_panic");
    assert!(
        matches!(reply.outcome, Outcome::Error { .. }),
        "injected panic must surface as a typed error: {reply:?}"
    );
    let jsonl = client.flight().expect("flight op");
    let boom_line = jsonl
        .lines()
        .find(|l| l.contains("\"lifecycle-boom\""))
        .unwrap_or_else(|| panic!("no flight digest for the panicking request:\n{jsonl}"));
    assert!(boom_line.contains("\"outcome\":\"panic\""), "{boom_line}");
    assert!(boom_line.contains("\"op\":\"debug_panic\""), "{boom_line}");
    assert!(
        jsonl.lines().any(|l| l.contains("\"lifecycle-before-panic\"")),
        "the healthy request preceding the panic is missing from the ring:\n{jsonl}"
    );
    handle.shutdown();
}

#[test]
fn metrics_prom_renders_the_phase_histograms_in_exposition_format() {
    let handle = spawn_with(2, ServerCaps::default());
    let mut client = connect(&handle);
    for _ in 0..3 {
        client.call(Limits::none(), Request::Ping).expect("ping");
    }
    let text = client.metrics_prom().expect("metrics_prom");
    for flat in [
        "server_phase_frame_ms",
        "server_phase_queue_ms",
        "server_phase_exec_ms",
        "server_phase_reorder_ms",
        "server_phase_write_ms",
        "server_e2e_ms",
    ] {
        assert!(
            text.contains(&format!("# TYPE {flat} histogram")),
            "{flat} missing from the exposition:\n{text}"
        );
        for suffix in ["_bucket{le=\"+Inf\"}", "_sum ", "_count "] {
            assert!(
                text.contains(&format!("{flat}{suffix}")),
                "{flat}{suffix} missing from the exposition"
            );
        }
    }
    // Format sanity: comments are HELP/TYPE only, HELP lines are
    // unique, samples are `name[{labels}] value` with numeric values.
    let mut helps: Vec<&str> = text.lines().filter(|l| l.starts_with("# HELP ")).collect();
    let total = helps.len();
    helps.sort_unstable();
    helps.dedup();
    assert_eq!(helps.len(), total, "duplicate HELP lines corrupt the exposition");
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "stray comment: {line}"
            );
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample shape");
        assert!(value.parse::<u64>().is_ok(), "non-numeric sample: {line}");
        let bare = name.split('{').next().unwrap();
        assert!(
            bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name: {bare}"
        );
    }
    handle.shutdown();
}
